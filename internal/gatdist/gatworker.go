package gatdist

import (
	"fmt"
	"math"
	"sync"

	"ecgraph/internal/ec"
	"ecgraph/internal/graph"
	"ecgraph/internal/nn"
	"ecgraph/internal/ps"
	"ecgraph/internal/tensor"
	"ecgraph/internal/transport"
	"ecgraph/internal/worker"
)

// store is a minimal (layer, epoch)-versioned publication point, the GAT
// analogue of the GCN worker's matStore.
type store struct {
	mu    sync.Mutex
	cond  *sync.Cond
	mats  []*tensor.Matrix
	epoch []int
}

func newStore(layers int) *store {
	s := &store{mats: make([]*tensor.Matrix, layers), epoch: make([]int, layers)}
	for i := range s.epoch {
		s.epoch[i] = -1
	}
	s.cond = sync.NewCond(&s.mu)
	return s
}

func (s *store) put(layer, epoch int, m *tensor.Matrix) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.mats[layer] = m
	s.epoch[layer] = epoch
	s.cond.Broadcast()
}

func (s *store) wait(layer, epoch int) *tensor.Matrix {
	s.mu.Lock()
	defer s.mu.Unlock()
	for s.epoch[layer] < epoch {
		s.cond.Wait()
	}
	if s.epoch[layer] > epoch {
		panic(fmt.Sprintf("gatdist: layer %d epoch %d requested after %d published", layer, epoch, s.epoch[layer]))
	}
	return s.mats[layer]
}

// headTrace holds one head's forward intermediates in local indexing.
type headTrace struct {
	p     *tensor.Matrix // (owned+ghost) × dHead
	alpha []float32      // per local edge
	pre   []float32      // pre-LeakyReLU logits per local edge
}

// gatLayerTrace holds one layer's forward intermediates in local indexing.
type gatLayerTrace struct {
	hcat  *tensor.Matrix // (owned+ghost) × d_in
	heads []*headTrace
	z     *tensor.Matrix // owned × combined d_out
}

// gatWorker is one node of the distributed GAT runtime.
type gatWorker struct {
	cfg          *Config
	id           int
	net          transport.Network
	topo         *worker.Topology
	psc          *ps.Client
	model        *nn.GATModel
	nTrainGlobal int

	owned      []int32
	ownedPos   map[int32]int32
	ghostIDs   []int32
	ghostPos   map[int32]int32
	ghostOwner []int
	ghostBase  map[int]int

	rowPtr []int32 // local CSR over owned rows (self-loops included)
	colIdx []int32

	x         *tensor.Matrix
	ghostX    *tensor.Matrix
	labels    []int
	trainMask []bool
	nTrain    int

	pairRows [][]int32 // owned-row indices served to each requester

	hStore  *store // owned H^l (layer L holds logits)
	dpStore *store // ghost-block ∂L/∂P partials per layer

	trace []*gatLayerTrace
	ownH  []*tensor.Matrix

	fpResp [][]*ec.ForwardResponder
	fpReq  [][]*ec.ForwardRequester
	dpResp [][]*ec.BackwardResponder // ResEC on the partial gradients
}

func newGATWorker(cfg *Config, id int, net transport.Network, topo *worker.Topology,
	adj *graph.NormAdjacency, model *nn.GATModel, psc *ps.Client, nTrainGlobal int) *gatWorker {
	d := cfg.Dataset
	L := model.NumLayers()
	w := &gatWorker{
		cfg: cfg, id: id, net: net, topo: topo, psc: psc, model: model,
		nTrainGlobal: nTrainGlobal,
		owned:        topo.Owned[id],
		ownedPos:     make(map[int32]int32),
		ghostPos:     make(map[int32]int32),
		ghostBase:    make(map[int]int),
		hStore:       newStore(L + 1),
		dpStore:      newStore(L + 1),
		trace:        make([]*gatLayerTrace, L+1),
		ownH:         make([]*tensor.Matrix, L+1),
	}
	for i, v := range w.owned {
		w.ownedPos[v] = int32(i)
	}
	for j := 0; j < topo.NumWorkers; j++ {
		lst := topo.Needs[id][j]
		if len(lst) == 0 {
			continue
		}
		w.ghostOwner = append(w.ghostOwner, j)
		w.ghostBase[j] = len(w.ghostIDs)
		for _, u := range lst {
			w.ghostPos[u] = int32(len(w.ghostIDs))
			w.ghostIDs = append(w.ghostIDs, u)
		}
	}
	nOwned := len(w.owned)
	w.rowPtr = make([]int32, nOwned+1)
	for i, v := range w.owned {
		for p := adj.RowPtr[v]; p < adj.RowPtr[v+1]; p++ {
			u := adj.ColIdx[p]
			var c int32
			if pos, ok := w.ownedPos[u]; ok {
				c = pos
			} else if pos, ok := w.ghostPos[u]; ok {
				c = int32(nOwned) + pos
			} else {
				panic(fmt.Sprintf("gatdist: worker %d: neighbour %d neither owned nor ghost", id, u))
			}
			w.colIdx = append(w.colIdx, c)
		}
		w.rowPtr[i+1] = int32(len(w.colIdx))
	}

	rows := make([]int, nOwned)
	for i, v := range w.owned {
		rows[i] = int(v)
	}
	w.x = d.Features.GatherRows(rows)
	w.ownH[0] = w.x
	w.labels = make([]int, nOwned)
	w.trainMask = make([]bool, nOwned)
	for i, v := range w.owned {
		w.labels[i] = d.Labels[v]
		w.trainMask[i] = d.TrainMask[v]
		if w.trainMask[i] {
			w.nTrain++
		}
	}
	w.pairRows = make([][]int32, topo.NumWorkers)
	for i := 0; i < topo.NumWorkers; i++ {
		lst := topo.Needs[i][id]
		if len(lst) == 0 {
			continue
		}
		pr := make([]int32, len(lst))
		for k, u := range lst {
			pr[k] = w.ownedPos[u]
		}
		w.pairRows[i] = pr
	}

	w.fpResp = make([][]*ec.ForwardResponder, L+1)
	w.fpReq = make([][]*ec.ForwardRequester, L+1)
	w.dpResp = make([][]*ec.BackwardResponder, L+1)
	if cfg.FPScheme == worker.SchemeEC {
		for l := 1; l < L; l++ {
			w.fpResp[l] = make([]*ec.ForwardResponder, topo.NumWorkers)
			w.fpReq[l] = make([]*ec.ForwardRequester, topo.NumWorkers)
			for i := range w.pairRows {
				if w.pairRows[i] != nil {
					w.fpResp[l][i] = ec.NewForwardResponder(cfg.Ttr)
				}
			}
			for _, j := range w.ghostOwner {
				w.fpReq[l][j] = ec.NewForwardRequester(cfg.Ttr)
			}
		}
	}
	if cfg.DPScheme == worker.SchemeEC {
		for l := 2; l <= L; l++ {
			w.dpResp[l] = make([]*ec.BackwardResponder, topo.NumWorkers)
			for i := range w.pairRows {
				if w.pairRows[i] != nil {
					w.dpResp[l][i] = ec.NewBackwardResponder()
				}
			}
		}
	}
	return w
}

func (w *gatWorker) numOwned() int  { return len(w.owned) }
func (w *gatWorker) numGhosts() int { return len(w.ghostIDs) }

func (w *gatWorker) fetchGhostFeatures() error {
	w.ghostX = tensor.New(len(w.ghostIDs), w.cfg.Dataset.Features.Cols)
	for _, j := range w.ghostOwner {
		req := transport.NewWriter(4)
		req.Int32(int32(w.id))
		resp, err := w.net.Call(w.id, j, methodGetX, req.Bytes())
		if err != nil {
			return fmt.Errorf("gatdist: worker %d fetch features from %d: %w", w.id, j, err)
		}
		rows := ec.ParseMatrix(resp)
		base := w.ghostBase[j]
		for r := 0; r < rows.Rows; r++ {
			copy(w.ghostX.Row(base+r), rows.Row(r))
		}
	}
	return nil
}

// runEpoch executes one synchronous training iteration and returns the
// local training-loss sum.
// runEpoch executes one synchronous training iteration and returns the
// local training-loss sum.
func (w *gatWorker) runEpoch(t int) (float64, error) {
	flat, err := w.psc.Pull(t)
	if err != nil {
		return 0, err
	}
	w.model.SetFlatParams(flat)
	L := w.model.NumLayers()
	nOwned := len(w.owned)

	// ---- Forward ----
	h := w.x
	for l := 1; l <= L; l++ {
		var ghost *tensor.Matrix
		if l == 1 {
			ghost = w.ghostX
		} else {
			ghost, err = w.fetchGhostH(l-1, t)
			if err != nil {
				return 0, err
			}
		}
		tr := &gatLayerTrace{hcat: stack(h, ghost)}
		layer := w.model.Layers[l-1]
		dHead := layer.W[0].Cols
		z := tensor.New(nOwned, layer.OutDim())
		for k := range layer.W {
			ht := w.headForward(tr.hcat, layer, k)
			tr.heads = append(tr.heads, ht)
			zk := w.headOutput(ht)
			if layer.Concat {
				for i := 0; i < nOwned; i++ {
					copy(z.Row(i)[k*dHead:(k+1)*dHead], zk.Row(i))
				}
			} else {
				z.AddScaledInPlace(zk, 1/float32(layer.Heads()))
			}
		}
		z.AddRowVector(layer.Bias)
		tr.z = z
		w.trace[l] = tr
		if l < L {
			h = z.ReLU()
		} else {
			h = z
		}
		w.ownH[l] = h
		w.hStore.put(l, t, h)
	}

	// ---- Loss gradient ----
	var lossSum float64
	logits := w.ownH[L]
	g := tensor.New(logits.Rows, logits.Cols)
	if w.nTrainGlobal > 0 {
		inv := float32(1 / float64(w.nTrainGlobal))
		for i := 0; i < logits.Rows; i++ {
			if w.trainMask[i] {
				lossSum += lossGradRow(logits.Row(i), w.labels[i], inv, g.Row(i))
			}
		}
	}

	// ---- Backward ----
	grads := nn.NewGATGradients(w.model)
	for l := L; l >= 1; l-- {
		layer := w.model.Layers[l-1]
		tr := w.trace[l]
		gl := grads.Layers[l-1]
		gl.Bias = g.ColSums()
		nLocal := tr.hcat.Rows
		dHead := layer.W[0].Cols

		// dH accumulates ∂L/∂Hcat over all heads and all local rows.
		dH := tensor.New(nLocal, tr.hcat.Cols)
		for k := range layer.W {
			gk := tensor.New(nOwned, dHead)
			if layer.Concat {
				for i := 0; i < nOwned; i++ {
					copy(gk.Row(i), g.Row(i)[k*dHead:(k+1)*dHead])
				}
			} else {
				gk = g.Scale(1 / float32(layer.Heads()))
			}
			dP := w.headBackward(tr, layer, k, gk, gl)
			dH.AddInPlace(dP.MatMulT(layer.W[k]))
		}

		if l == 1 {
			break
		}
		// Publish the ghost block of ∂L/∂H and gather the peers' partials
		// for our owned rows — the reverse of the forward ghost gather.
		ghostDH := tensor.New(len(w.ghostIDs), dH.Cols)
		for r := 0; r < len(w.ghostIDs); r++ {
			copy(ghostDH.Row(r), dH.Row(nOwned+r))
		}
		w.dpStore.put(l, t, ghostDH)

		dhOwned := tensor.New(nOwned, dH.Cols)
		for i := 0; i < nOwned; i++ {
			copy(dhOwned.Row(i), dH.Row(i))
		}
		for peer, pr := range w.pairRows {
			if pr == nil {
				continue
			}
			req := transport.NewWriter(16)
			req.Byte(byte(l))
			req.Uint32(uint32(t))
			req.Int32(int32(w.id))
			resp, err := w.net.Call(w.id, peer, methodGetDP, req.Bytes())
			if err != nil {
				return 0, fmt.Errorf("gatdist: worker %d getDP from %d: %w", w.id, peer, err)
			}
			rows := ec.ParseMatrix(resp)
			need := w.topo.Needs[peer][w.id]
			for k, u := range need {
				dst := dhOwned.Row(int(w.ownedPos[u]))
				src := rows.Row(k)
				for x := range dst {
					dst[x] += src[x]
				}
			}
		}
		g = dhOwned.HadamardInPlace(w.trace[l-1].z.ReLUGrad())
	}

	if err := w.psc.Push(t, grads.Flatten()); err != nil {
		return 0, err
	}
	return lossSum, nil
}

// headForward computes one head's attention over the worker's local rows:
// P over owned+ghost rows, logits and softmax over the owned rows' edges.
func (w *gatWorker) headForward(hcat *tensor.Matrix, layer *nn.GATLayer, k int) *headTrace {
	p := hcat.MatMul(layer.W[k])
	d := p.Cols
	nOwned := len(w.owned)
	nLocal := p.Rows
	a1, a2 := layer.A1[k], layer.A2[k]
	s := make([]float32, nOwned)
	r := make([]float32, nLocal)
	for c := 0; c < nLocal; c++ {
		prow := p.Row(c)
		var accR float32
		for x := 0; x < d; x++ {
			accR += a2[x] * prow[x]
		}
		r[c] = accR
		if c < nOwned {
			var accS float32
			for x := 0; x < d; x++ {
				accS += a1[x] * prow[x]
			}
			s[c] = accS
		}
	}
	ht := &headTrace{
		p:     p,
		pre:   make([]float32, len(w.colIdx)),
		alpha: make([]float32, len(w.colIdx)),
	}
	for i := 0; i < nOwned; i++ {
		lo, hi := w.rowPtr[i], w.rowPtr[i+1]
		mx := float32(-1e30)
		for e := lo; e < hi; e++ {
			pre := s[i] + r[w.colIdx[e]]
			ht.pre[e] = pre
			v := pre
			if v < 0 {
				v *= 0.2
			}
			ht.alpha[e] = v
			if v > mx {
				mx = v
			}
		}
		var sum float64
		for e := lo; e < hi; e++ {
			ex := exp32(ht.alpha[e] - mx)
			ht.alpha[e] = ex
			sum += float64(ex)
		}
		inv := float32(1 / sum)
		for e := lo; e < hi; e++ {
			ht.alpha[e] *= inv
		}
	}
	return ht
}

// headOutput aggregates Z_ki = Σ_j α_ij P_kj over the owned rows.
func (w *gatWorker) headOutput(ht *headTrace) *tensor.Matrix {
	nOwned := len(w.owned)
	d := ht.p.Cols
	z := tensor.New(nOwned, d)
	for i := 0; i < nOwned; i++ {
		zrow := z.Row(i)
		for e := w.rowPtr[i]; e < w.rowPtr[i+1]; e++ {
			prow := ht.p.Row(int(w.colIdx[e]))
			a := ht.alpha[e]
			for x := 0; x < d; x++ {
				zrow[x] += a * prow[x]
			}
		}
	}
	return z
}

// headBackward backpropagates one head over the local rows: accumulates
// this worker's partial dW, dA1, dA2 into gl and returns the local partial
// ∂L/∂P_k over all owned+ghost rows.
func (w *gatWorker) headBackward(tr *gatLayerTrace, layer *nn.GATLayer, k int,
	gk *tensor.Matrix, gl *nn.GATLayer) *tensor.Matrix {
	ht := tr.heads[k]
	nOwned := len(w.owned)
	nLocal := ht.p.Rows
	d := ht.p.Cols
	dP := tensor.New(nLocal, d)
	ds := make([]float32, nOwned)
	dr := make([]float32, nLocal)
	for i := 0; i < nOwned; i++ {
		lo, hi := w.rowPtr[i], w.rowPtr[i+1]
		grow := gk.Row(i)
		var inner float64
		dAlpha := make([]float32, hi-lo)
		for e := lo; e < hi; e++ {
			prow := ht.p.Row(int(w.colIdx[e]))
			var dot float32
			for x := 0; x < d; x++ {
				dot += grow[x] * prow[x]
			}
			dAlpha[e-lo] = dot
			inner += float64(ht.alpha[e]) * float64(dot)
		}
		for e := lo; e < hi; e++ {
			j := int(w.colIdx[e])
			a := ht.alpha[e]
			dprow := dP.Row(j)
			for x := 0; x < d; x++ {
				dprow[x] += a * grow[x]
			}
			de := a * (dAlpha[e-lo] - float32(inner))
			if ht.pre[e] < 0 {
				de *= 0.2
			}
			ds[i] += de
			dr[j] += de
		}
	}
	a1, a2 := layer.A1[k], layer.A2[k]
	gA1, gA2 := gl.A1[k], gl.A2[k]
	for c := 0; c < nLocal; c++ {
		prow := ht.p.Row(c)
		dprow := dP.Row(c)
		if c < nOwned {
			for x := 0; x < d; x++ {
				gA1[x] += ds[c] * prow[x]
				dprow[x] += ds[c] * a1[x]
			}
		}
		for x := 0; x < d; x++ {
			gA2[x] += dr[c] * prow[x]
			dprow[x] += dr[c] * a2[x]
		}
	}
	gl.W[k].AddInPlace(tr.hcat.TMatMul(dP))
	return dP
}

func (w *gatWorker) fetchGhostH(l, t int) (*tensor.Matrix, error) {
	if len(w.ghostIDs) == 0 {
		return nil, nil
	}
	dim := w.model.Dims[l]
	out := tensor.New(len(w.ghostIDs), dim)
	for _, j := range w.ghostOwner {
		req := transport.NewWriter(16)
		req.Byte(byte(l))
		req.Uint32(uint32(t))
		req.Int32(int32(w.id))
		resp, err := w.net.Call(w.id, j, methodGetH, req.Bytes())
		if err != nil {
			return nil, fmt.Errorf("gatdist: worker %d getH from %d: %w", w.id, j, err)
		}
		var rows *tensor.Matrix
		if w.cfg.FPScheme == worker.SchemeEC {
			rows = w.fpReq[l][j].Parse(resp, t)
		} else {
			rows = ec.ParseMatrix(resp)
		}
		base := w.ghostBase[j]
		for r := 0; r < rows.Rows; r++ {
			copy(out.Row(base+r), rows.Row(r))
		}
	}
	return out, nil
}

func (w *gatWorker) handler() transport.Handler {
	return func(method string, req []byte) (resp []byte, err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("gatdist: worker %d: %s: %v", w.id, method, r)
			}
		}()
		r := transport.NewReader(req)
		switch method {
		case methodGetX:
			requester := int(r.Int32())
			pr := w.pairRows[requester]
			if pr == nil {
				return nil, fmt.Errorf("gatdist: no pair set for %d", requester)
			}
			rows := make([]int, len(pr))
			for k, p := range pr {
				rows[k] = int(p)
			}
			return ec.RespondRaw(w.x.GatherRows(rows)), nil

		case methodGetH:
			l := int(r.Byte())
			t := int(r.Uint32())
			requester := int(r.Int32())
			pr := w.pairRows[requester]
			if pr == nil {
				return nil, fmt.Errorf("gatdist: no pair set for %d", requester)
			}
			h := w.hStore.wait(l, t)
			rows := make([]int, len(pr))
			for k, p := range pr {
				rows[k] = int(p)
			}
			m := h.GatherRows(rows)
			switch w.cfg.FPScheme {
			case worker.SchemeRaw:
				return ec.RespondRaw(m), nil
			case worker.SchemeCompress:
				return ec.RespondCompressOnly(m, w.cfg.FPBits), nil
			case worker.SchemeEC:
				payload, _ := w.fpResp[l][requester].Respond(m, t, w.cfg.FPBits)
				return payload, nil
			default:
				return nil, fmt.Errorf("gatdist: bad FP scheme %v", w.cfg.FPScheme)
			}

		case methodGetDP:
			l := int(r.Byte())
			t := int(r.Uint32())
			owner := int(r.Int32())
			base, ok := w.ghostBase[owner]
			if !ok {
				return nil, fmt.Errorf("gatdist: worker %d holds no ghosts of %d", w.id, owner)
			}
			ghostDP := w.dpStore.wait(l, t)
			count := len(w.topo.Needs[w.id][owner])
			block := tensor.New(count, ghostDP.Cols)
			for k := 0; k < count; k++ {
				copy(block.Row(k), ghostDP.Row(base+k))
			}
			switch w.cfg.DPScheme {
			case worker.SchemeRaw:
				return ec.RespondRaw(block), nil
			case worker.SchemeCompress:
				return ec.RespondCompressOnlyGrad(block, w.cfg.DPBits), nil
			case worker.SchemeEC:
				return w.dpResp[l][owner].Respond(block, w.cfg.DPBits), nil
			default:
				return nil, fmt.Errorf("gatdist: bad DP scheme %v", w.cfg.DPScheme)
			}

		case methodLogits:
			t := int(r.Uint32())
			logits := w.hStore.wait(w.model.NumLayers(), t)
			out := transport.NewWriter(8 + len(w.owned)*4 + len(logits.Data)*4)
			out.Int32s(w.owned)
			out.Matrix(logits)
			return out.Bytes(), nil

		default:
			return nil, fmt.Errorf("gatdist: unknown method %q", method)
		}
	}
}

func stack(owned, ghost *tensor.Matrix) *tensor.Matrix {
	if ghost == nil || ghost.Rows == 0 {
		return owned
	}
	out := tensor.New(owned.Rows+ghost.Rows, owned.Cols)
	copy(out.Data[:len(owned.Data)], owned.Data)
	copy(out.Data[len(owned.Data):], ghost.Data)
	return out
}

func exp32(v float32) float32 {
	return float32(math.Exp(float64(v)))
}
