package ec

import (
	"fmt"

	"ecgraph/internal/compress"
	"ecgraph/internal/tensor"
	"ecgraph/internal/transport"
)

// BackwardResponder holds the responding-end state of ResEC-BP for one
// (layer, requester) pair: the residual δ of the previous iteration's
// quantisation, added back before compressing the next round (Eqs. 11-12,
// Alg. 6). This is classic error feedback applied to embedding gradients.
type BackwardResponder struct {
	delta *tensor.Matrix // δ^{l,t−1}; nil until the first response

	// Hot-path scratch, reused across iterations and reallocated only when
	// the gradient shape changes (topology rebuild): the compensated sum
	// g + δ and the decode of its quantisation. Respond runs once per
	// (layer, requester) per epoch on the serving worker's RPC path, so
	// with these the steady-state response allocates only the wire buffer.
	cpt *tensor.Matrix
	dec *tensor.Matrix
}

// NewBackwardResponder returns fresh responder state (δ = 0).
func NewBackwardResponder() *BackwardResponder { return &BackwardResponder{} }

// Respond compensates the gradient rows g with the stored residual,
// compresses the sum with the given bit width over its measured symmetric
// domain (Alg. 6 line 4: gradients are not normalised into a unit ball),
// updates δ per Eq. 11 and returns the wire payload. The zero-centred
// gradient grid is used rather than bucket midpoints: loss gradients are
// zero outside the training vertices, and a grid without an exact zero
// level makes the error feedback oscillate on those rows (see
// compress.CompressZeroCentered).
func (r *BackwardResponder) Respond(g *tensor.Matrix, bits int) []byte {
	// The elementwise loops compute exactly what g.Add(δ) / cpt.Sub(dec)
	// did, in the same index order — payloads and residuals stay bitwise
	// identical to the allocating form.
	cpt := g
	if r.delta != nil {
		if r.delta.Rows != g.Rows || r.delta.Cols != g.Cols {
			panic(fmt.Sprintf("ec: Respond %dx%d gradient against %dx%d residual",
				g.Rows, g.Cols, r.delta.Rows, r.delta.Cols))
		}
		if r.cpt == nil || r.cpt.Rows != g.Rows || r.cpt.Cols != g.Cols {
			r.cpt = tensor.New(g.Rows, g.Cols)
		}
		cd, dd := r.cpt.Data, r.delta.Data
		for i, x := range g.Data {
			cd[i] = x + dd[i]
		}
		cpt = r.cpt
	}
	q := compress.CompressZeroCentered(cpt, bits) // M = C_bit[g + δ] (Eq. 12)
	if r.dec == nil || r.dec.Rows != g.Rows || r.dec.Cols != g.Cols {
		r.dec = tensor.New(g.Rows, g.Cols)
	}
	q.DecompressInto(r.dec)
	if r.delta == nil || r.delta.Rows != g.Rows || r.delta.Cols != g.Cols {
		r.delta = tensor.New(g.Rows, g.Cols)
	}
	ld, xd := r.delta.Data, r.dec.Data
	for i, c := range cpt.Data { // δ = (g + δ_prev) − C[g + δ_prev] (Eq. 11)
		ld[i] = c - xd[i]
	}

	w := transport.NewWriter(2 + len(q.Packed)*8)
	w.Byte(schemeCompress)
	w.Quantized(q)
	q.Release()
	return w.Bytes()
}

// Residual returns the current residual matrix δ (nil before the first
// response); read-only, for diagnostics like the Theorem 1 trace.
func (r *BackwardResponder) Residual() *tensor.Matrix { return r.delta }

// Reset zeroes the error-feedback residual (δ = 0). After a respawn or
// rollback the stored residual compensates for quantisation errors of
// gradients that no longer exist in the replayed trajectory; restoring it
// would inject stale error feedback, so it is deliberately discarded.
func (r *BackwardResponder) Reset() { r.delta = nil }

// ResidualRow returns a copy of row i of δ, or nil when no residual has
// accumulated yet. Used by elastic state handoff: when a vertex changes
// owners, its accumulated quantisation error moves with it so the error
// feedback loop for that (vertex, requester) pair continues rather than
// restarting from zero.
func (r *BackwardResponder) ResidualRow(i int) []float32 {
	if r.delta == nil || i < 0 || i >= r.delta.Rows {
		return nil
	}
	return append([]float32(nil), r.delta.Row(i)...)
}

// SeedResidualRow installs row into position i of a (rows, cols)-shaped
// residual, allocating δ as zeros first if the responder has never
// responded — the import half of the handoff. Rows not seeded stay zero,
// which is exactly the fresh-responder state they would have anyway.
func (r *BackwardResponder) SeedResidualRow(rows, cols, i int, row []float32) {
	if i < 0 || i >= rows || len(row) != cols {
		panic(fmt.Sprintf("ec: seed residual row %d of (%d,%d) with %d values", i, rows, cols, len(row)))
	}
	if r.delta == nil {
		r.delta = tensor.New(rows, cols)
	}
	if r.delta.Rows != rows || r.delta.Cols != cols {
		// A residual of a different shape describes a pair list that no
		// longer exists (the requester's needs changed with the topology);
		// keeping it would misalign every row, so start over.
		r.delta = tensor.New(rows, cols)
	}
	copy(r.delta.Row(i), row)
}

// TopKResponder is the Top-K-with-memory alternative to BackwardResponder
// (Stich et al., the paper's reference [32]): the same error-feedback loop,
// but the compressor keeps the k largest-magnitude elements of g + δ
// instead of quantising all of them. k is chosen to match the byte budget
// of B-bit quantisation, so the two compensate arms are directly
// comparable.
type TopKResponder struct {
	Bits  int // byte-budget reference
	delta *tensor.Matrix
}

// NewTopKResponder returns fresh responder state budgeted against bits.
func NewTopKResponder(bits int) *TopKResponder {
	if !compress.IsValidBits(bits) {
		panic(fmt.Sprintf("ec: invalid budget bits %d", bits))
	}
	return &TopKResponder{Bits: bits}
}

// Respond compensates g with the stored residual, sparsifies, updates δ and
// returns the wire payload.
func (r *TopKResponder) Respond(g *tensor.Matrix) []byte {
	cpt := g
	if r.delta != nil {
		cpt = g.Add(r.delta)
	}
	k := compress.KForBudget(len(cpt.Data), r.Bits)
	s := compress.TopK(cpt, k)
	r.delta = cpt.Sub(s.Dense())

	w := transport.NewWriter(2 + s.WireBytes())
	w.Byte(schemeSparse)
	w.Sparse(s)
	return w.Bytes()
}

// Reset zeroes the error-feedback memory, like BackwardResponder.Reset.
func (r *TopKResponder) Reset() { r.delta = nil }

// ResidualNorm returns ‖δ‖₂.
func (r *TopKResponder) ResidualNorm() float64 {
	if r.delta == nil {
		return 0
	}
	return r.delta.FrobeniusNorm()
}

// ResidualNorm returns ‖δ‖₂, the quantity Theorem 1 bounds.
func (r *BackwardResponder) ResidualNorm() float64 {
	if r.delta == nil {
		return 0
	}
	return r.delta.FrobeniusNorm()
}

// RespondCompressOnly quantises m without compensation (the paper's Cp-fp
// ablation arm; bucket quantiser of Fig. 3).
func RespondCompressOnly(m *tensor.Matrix, bits int) []byte {
	q := compress.Compress(m, bits)
	w := transport.NewWriter(2 + len(q.Packed)*8)
	w.Byte(schemeCompress)
	w.Quantized(q)
	q.Release()
	return w.Bytes()
}

// RespondCompressOnlyGrad quantises gradient rows without compensation
// (the Cp-bp arm) on the same zero-centred grid ResEC uses, so the
// ablation isolates the compensation rather than the grid.
func RespondCompressOnlyGrad(m *tensor.Matrix, bits int) []byte {
	q := compress.CompressZeroCentered(m, bits)
	w := transport.NewWriter(2 + len(q.Packed)*8)
	w.Byte(schemeCompress)
	w.Quantized(q)
	q.Release()
	return w.Bytes()
}

// RespondRaw ships m uncompressed (the Non-cp arm).
func RespondRaw(m *tensor.Matrix) []byte {
	w := transport.NewWriter(10 + len(m.Data)*4)
	w.Byte(schemeRaw)
	w.Matrix(m)
	return w.Bytes()
}

// ParseMatrix decodes a payload produced by RespondRaw, RespondCompressOnly
// or BackwardResponder.Respond.
func ParseMatrix(payload []byte) *tensor.Matrix {
	r := transport.NewReader(payload)
	switch scheme := r.Byte(); scheme {
	case schemeRaw:
		return r.Matrix()
	case schemeCompress:
		return decompressReleasing(r)
	case schemeSparse:
		return r.Sparse().Dense()
	default:
		panic(fmt.Sprintf("ec: unexpected matrix scheme %d", scheme))
	}
}

// ParsePacked decodes the same payloads as ParseMatrix but keeps a purely
// quantised matrix (the Cp-fp/Cp-bp and ResEC-BP wire format) in the packed
// block layout for quantised-domain compute — no decode pass, no float
// materialisation. Exactly one of the results is non-nil: raw and sparse
// payloads carry no packed words and come back dense.
func ParsePacked(payload []byte) (*tensor.Matrix, *compress.Blocked) {
	r := transport.NewReader(payload)
	switch scheme := r.Byte(); scheme {
	case schemeRaw:
		return r.Matrix(), nil
	case schemeCompress:
		return nil, r.Quantized().Block()
	case schemeSparse:
		return r.Sparse().Dense(), nil
	default:
		panic(fmt.Sprintf("ec: unexpected matrix scheme %d", scheme))
	}
}
