// Package ec implements the paper's error-compensated compression: the
// requesting-end compensation for forward-propagation embeddings
// (ReqEC-FP, §IV-B: trend groups, the three-way approximation selector and
// the adaptive Bit-Tuner) and the responding-end compensation for
// backward-propagation embedding gradients (ResEC-BP, §IV-C, Eqs. 11-12).
//
// The state machines here are pure with respect to the transport: they
// consume and produce byte payloads via the transport codec, so the same
// logic runs over the in-process network and real TCP. One
// (ForwardResponder, ForwardRequester) pair exists per (layer, responding
// worker, requesting worker) triple, always covering the same fixed vertex
// rows; likewise for BackwardResponder.
package ec

import (
	"fmt"

	"ecgraph/internal/compress"
	"ecgraph/internal/tensor"
	"ecgraph/internal/transport"
)

// Message scheme tags (first payload byte).
const (
	schemeRaw      = 0 // uncompressed matrix
	schemeCompress = 1 // compression only, no compensation
	schemeExact    = 2 // ReqEC trend boundary: exact H + changing-rate matrix
	schemeSelected = 3 // ReqEC in-group: selector array + filtered compressed rows
	schemeSparse   = 4 // Top-K sparsified matrix (with error feedback)
)

// Approximation ids in the selector array (§IV-B: "00, 01 and 10 for
// compressed, predicted, and average").
const (
	SelCompressed = 0
	SelPredicted  = 1
	SelAverage    = 2
)

// RespondStats summarises one ReqEC response for the Bit-Tuner and the
// communication accounting.
type RespondStats struct {
	Rows      int // vertices covered by this response
	Predicted int // vertices for which the predicted approximation won
	Average   int // vertices for which the running average won
	Exact     bool
}

// Granularity selects the scope at which the selector picks among the
// three approximations. §IV-B: "There are three kinds of granularity ...
// element-wise, vertex-wise and matrix-wise schemas. We use vertex-wise
// approximations, which yields the best balance" — matrix-wise is provided
// for the ablation benchmark.
type Granularity int

const (
	// GranularityVertex selects per vertex row (the paper's choice).
	GranularityVertex Granularity = iota
	// GranularityMatrix selects one approximation for the whole message.
	GranularityMatrix
)

// ForwardResponder holds the responding-end state of ReqEC-FP for one
// (layer, requester) pair: the exact embeddings sent at the last trend
// boundary and the changing-rate matrix M_cr derived from them (Alg. 4).
type ForwardResponder struct {
	Ttr         int
	Granularity Granularity

	hLast      *tensor.Matrix // exact rows at the previous trend boundary
	mcr        *tensor.Matrix // (H_now − H_last)/Ttr
	haveBase   bool
	forceExact bool // Respond sends exact boundaries regardless of t
	forceRound int  // first round served while forced; exact through that round
}

// NewForwardResponder returns responder state with trend-group length ttr.
func NewForwardResponder(ttr int) *ForwardResponder {
	if ttr < 2 {
		panic(fmt.Sprintf("ec: Ttr must be ≥ 2, got %d", ttr))
	}
	return &ForwardResponder{Ttr: ttr}
}

// Respond builds the reply payload for iteration t carrying the embedding
// rows h (the requester's ghost rows, fixed order) compressed with the
// given bit width. At trend boundaries (t mod Ttr == Ttr−1) it sends exact
// embeddings plus M_cr; otherwise it evaluates the three approximations,
// selects per vertex, and ships only what the requester cannot predict.
func (r *ForwardResponder) Respond(h *tensor.Matrix, t, bits int) ([]byte, RespondStats) {
	if r.forceExact {
		if r.forceRound < 0 {
			r.forceRound = t
		}
		if t <= r.forceRound {
			return r.respondExact(h), RespondStats{Rows: h.Rows, Exact: true}
		}
		// First request past the forced round: the sync happened, resume
		// the normal trend-group schedule.
		r.forceExact = false
		r.forceRound = -1
	}
	if (t+1)%r.Ttr == 0 {
		return r.respondExact(h), RespondStats{Rows: h.Rows, Exact: true}
	}
	return r.respondSelected(h, t, bits)
}

// ForceExact makes Respond send exact trend boundaries regardless of the
// iteration number — the forced exact-sync round a recovery or resume uses
// to re-baseline the pair after compensation state was reset, exactly
// mirroring the scheduled T_tr boundary on the wire. The force is sticky
// for the whole first round it serves (not one-shot): a failed epoch
// attempt can leave timed-out duplicate requests in flight, and a stale
// duplicate must not consume the exact sync the retry depends on.
func (r *ForwardResponder) ForceExact() {
	r.forceExact = true
	r.forceRound = -1
}

// Reset discards the trend state (H_last, M_cr): the pair behaves as if
// freshly constructed. Used when a peer is respawned or a run rolls back —
// stale baselines must never feed the selector again.
func (r *ForwardResponder) Reset() {
	r.hLast = nil
	r.mcr = nil
	r.haveBase = false
	r.forceExact = false
	r.forceRound = -1
}

func (r *ForwardResponder) respondExact(h *tensor.Matrix) []byte {
	w := transport.NewWriter(2 + h.Rows*h.Cols*8)
	w.Byte(schemeExact)
	w.Matrix(h)
	if r.haveBase {
		// M_cr = (H_res − H_last)/Ttr (Alg. 4 line 4).
		mcr := h.Sub(r.hLast).ScaleInPlace(1 / float32(r.Ttr))
		w.Byte(1)
		w.Matrix(mcr)
		r.mcr = mcr
	} else {
		w.Byte(0)
		r.mcr = tensor.New(h.Rows, h.Cols)
	}
	r.hLast = h.Clone()
	r.haveBase = true
	return w.Bytes()
}

func (r *ForwardResponder) respondSelected(h *tensor.Matrix, t, bits int) ([]byte, RespondStats) {
	q := compress.Compress(h, bits)
	cps := q.Decompress()

	stats := RespondStats{Rows: h.Rows}
	w := transport.NewWriter(2 + h.Rows*h.Cols)
	w.Byte(schemeSelected)

	if !r.haveBase {
		// No trend baseline yet (first group of the run): only the
		// compressed approximation exists. An all-compressed selector is
		// encoded compactly as "no selector" (flag 0).
		w.Byte(0)
		w.Quantized(q)
		q.Release()
		return w.Bytes(), stats
	}

	// Ĥ_pdt = H_base + M_cr·(t mod Ttr + 1) (Eq. 7).
	k := float32(t%r.Ttr + 1)
	pdt := r.hLast.Add(r.mcr.Scale(k))
	// Ĥ_avg = (Ĥ_pdt + Ĥ_cps)/2 (Eq. 9).
	avg := pdt.Add(cps).ScaleInPlace(0.5)

	if r.Granularity == GranularityMatrix {
		out, st := r.respondMatrixWise(h, cps, pdt, avg, q, w, stats)
		q.Release()
		return out, st
	}

	// Per-vertex L1 distances (Eq. 10) and arg-min selection.
	sel := make([]byte, h.Rows)
	for v := 0; v < h.Rows; v++ {
		dc := rowL1(h, cps, v)
		dp := rowL1(h, pdt, v)
		da := rowL1(h, avg, v)
		best := SelCompressed
		bd := dc
		if dp < bd {
			best, bd = SelPredicted, dp
		}
		if da < bd {
			best = SelAverage
		}
		sel[v] = byte(best)
		switch best {
		case SelPredicted:
			stats.Predicted++
		case SelAverage:
			stats.Average++
		}
	}

	// Filter out predicted rows: they need no data on the wire (§IV-B
	// "we do not need to send the compressed values").
	keep := make([]int, 0, h.Rows)
	for v, s := range sel {
		if s != SelPredicted {
			keep = append(keep, v)
		}
	}
	filtered := compress.CompressWithRange(cps.GatherRows(keep), bits, q.Lo, q.Hi)

	w.Byte(1)
	w.Uint8s(packSelector(sel))
	w.Uint32(uint32(len(sel)))
	w.Quantized(filtered)
	filtered.Release()
	q.Release()
	return w.Bytes(), stats
}

// respondMatrixWise picks one approximation for the entire message: a
// single id byte plus, unless predicted wins, the compressed matrix.
func (r *ForwardResponder) respondMatrixWise(h, cps, pdt, avg *tensor.Matrix, q *compress.Quantized, w *transport.Writer, stats RespondStats) ([]byte, RespondStats) {
	dc := cps.Sub(h).AbsSum()
	dp := pdt.Sub(h).AbsSum()
	da := avg.Sub(h).AbsSum()
	best := SelCompressed
	bd := dc
	if dp < bd {
		best, bd = SelPredicted, dp
	}
	if da < bd {
		best = SelAverage
	}
	w.Byte(2) // matrix-wise selector flag
	w.Byte(byte(best))
	w.Uint32(uint32(h.Rows))
	switch best {
	case SelPredicted:
		stats.Predicted = h.Rows
	case SelAverage:
		stats.Average = h.Rows
	}
	if best != SelPredicted {
		w.Quantized(q)
	}
	return w.Bytes(), stats
}

// decompressReleasing decodes a wire-format Quantized, reconstructs the
// matrix and immediately returns the packed buffer to the compress pool.
func decompressReleasing(r *transport.Reader) *tensor.Matrix {
	q := r.Quantized()
	m := q.Decompress()
	q.Release()
	return m
}

func rowL1(a, b *tensor.Matrix, row int) float64 {
	ra, rb := a.Row(row), b.Row(row)
	var sum float64
	for i, v := range ra {
		d := float64(v - rb[i])
		if d < 0 {
			d = -d
		}
		sum += d
	}
	return sum
}

// packSelector packs 2-bit approximation ids, four per byte (the paper
// ships 2 bits per vertex).
func packSelector(sel []byte) []byte {
	out := make([]byte, (len(sel)+3)/4)
	for i, s := range sel {
		out[i/4] |= (s & 3) << (uint(i%4) * 2)
	}
	return out
}

func unpackSelector(packed []byte, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = (packed[i/4] >> (uint(i%4) * 2)) & 3
	}
	return out
}

// ForwardRequester mirrors ForwardResponder on the requesting end (Alg. 3):
// it tracks the same trend baseline so predicted embeddings can be
// reconstructed without any wire data.
type ForwardRequester struct {
	Ttr int

	hBase    *tensor.Matrix
	mcr      *tensor.Matrix
	haveBase bool
}

// NewForwardRequester returns requester state with trend-group length ttr.
func NewForwardRequester(ttr int) *ForwardRequester {
	if ttr < 2 {
		panic(fmt.Sprintf("ec: Ttr must be ≥ 2, got %d", ttr))
	}
	return &ForwardRequester{Ttr: ttr}
}

// Reset discards the requester's trend state; the next parsed exact
// boundary rebuilds it. A requester without a baseline decodes
// all-compressed and exact payloads fine and converts anything that needs
// a baseline into a decode error, which the degraded path absorbs.
func (q *ForwardRequester) Reset() {
	q.hBase = nil
	q.mcr = nil
	q.haveBase = false
}

// Predict returns the requester-side linear prediction
// Ĥ_pdt = H_base + M_cr·(t mod Ttr + 1) (Eq. 7) without any wire data.
// It is the degraded-mode fallback when a ghost fetch exhausts its retries:
// the same trend state the selector exploits to skip predictable rows also
// approximates rows the network failed to deliver. ok is false before the
// first trend baseline has been received.
func (q *ForwardRequester) Predict(t int) (pdt *tensor.Matrix, ok bool) {
	if !q.haveBase {
		return nil, false
	}
	k := float32(t%q.Ttr + 1)
	return q.hBase.Add(q.mcr.Scale(k)), true
}

// Parse decodes a ReqEC-FP payload for iteration t into the reconstructed
// ghost embedding rows.
func (q *ForwardRequester) Parse(payload []byte, t int) *tensor.Matrix {
	r := transport.NewReader(payload)
	switch scheme := r.Byte(); scheme {
	case schemeExact:
		h := r.Matrix()
		if r.Byte() == 1 {
			q.mcr = r.Matrix()
		} else {
			q.mcr = tensor.New(h.Rows, h.Cols)
		}
		q.hBase = h.Clone()
		q.haveBase = true
		return h
	case schemeSelected:
		switch flag := r.Byte(); flag {
		case 0:
			// No selector: everything compressed.
			return decompressReleasing(r)
		case 2:
			// Matrix-wise selector: one id for the whole message.
			id := int(r.Byte())
			n := int(r.Uint32())
			var pdt *tensor.Matrix
			if id != SelCompressed {
				if !q.haveBase {
					panic("ec: matrix-wise prediction before any trend baseline")
				}
				k := float32(t%q.Ttr + 1)
				pdt = q.hBase.Add(q.mcr.Scale(k))
				if pdt.Rows != n {
					panic(fmt.Sprintf("ec: matrix-wise row mismatch %d vs %d", pdt.Rows, n))
				}
			}
			switch id {
			case SelPredicted:
				return pdt
			case SelCompressed:
				return decompressReleasing(r)
			case SelAverage:
				return pdt.Add(decompressReleasing(r)).ScaleInPlace(0.5)
			default:
				panic(fmt.Sprintf("ec: invalid matrix-wise selector id %d", id))
			}
		case 1:
			// Vertex-wise selector: fall through below.
		default:
			panic(fmt.Sprintf("ec: invalid selector flag %d", flag))
		}
		packed := r.Uint8s()
		n := int(r.Uint32())
		sel := unpackSelector(packed, n)
		filtered := decompressReleasing(r)
		if !q.haveBase {
			panic("ec: selected payload with selector before any trend baseline")
		}
		k := float32(t%q.Ttr + 1)
		pdt := q.hBase.Add(q.mcr.Scale(k))
		out := tensor.New(n, pdt.Cols)
		fi := 0
		for v := 0; v < n; v++ {
			switch sel[v] {
			case SelPredicted:
				copy(out.Row(v), pdt.Row(v))
			case SelCompressed:
				copy(out.Row(v), filtered.Row(fi))
				fi++
			case SelAverage:
				prow, crow, orow := pdt.Row(v), filtered.Row(fi), out.Row(v)
				for j := range orow {
					orow[j] = (prow[j] + crow[j]) / 2
				}
				fi++
			default:
				panic(fmt.Sprintf("ec: invalid selector id %d", sel[v]))
			}
		}
		return out
	default:
		panic(fmt.Sprintf("ec: unexpected forward scheme %d", scheme))
	}
}

// BitTuner adapts the compression bit width from the fraction of vertices
// whose predicted approximation was selected (§IV-B): > 60 % predicted
// means compression is too lossy → double B (cap 16); < 40 % means the
// channel can afford fewer bits → halve B (floor 1).
type BitTuner struct {
	Bits int
}

// NewBitTuner starts at the given width, which must be on the menu.
func NewBitTuner(bits int) *BitTuner {
	if !compress.IsValidBits(bits) {
		panic(fmt.Sprintf("ec: invalid initial bits %d", bits))
	}
	return &BitTuner{Bits: bits}
}

// Update applies the 60/40 rule to the observed predicted proportion.
func (b *BitTuner) Update(propPredicted float64) {
	switch {
	case propPredicted > 0.6 && b.Bits < 16:
		b.Bits *= 2
	case propPredicted < 0.4 && b.Bits > 1:
		b.Bits /= 2
	}
}
