package ec

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"ecgraph/internal/compress"
	"ecgraph/internal/tensor"
)

func randomMatrix(rng *rand.Rand, rows, cols int) *tensor.Matrix {
	m := tensor.New(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.Float32()
	}
	return m
}

func TestPackSelectorRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(50)
		sel := make([]byte, n)
		for i := range sel {
			sel[i] = byte(rng.Intn(3))
		}
		got := unpackSelector(packSelector(sel), n)
		for i := range sel {
			if got[i] != sel[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPackSelectorSize(t *testing.T) {
	if got := len(packSelector(make([]byte, 9))); got != 3 {
		t.Fatalf("packed 9 selectors into %d bytes, want 3", got)
	}
}

func TestForwardExactBoundaryRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	resp := NewForwardResponder(4)
	req := NewForwardRequester(4)
	h := randomMatrix(rng, 5, 8)
	// t=3 is a boundary for Ttr=4.
	payload, stats := resp.Respond(h, 3, 2)
	if !stats.Exact {
		t.Fatalf("boundary response not marked exact")
	}
	got := req.Parse(payload, 3)
	if !got.Equal(h, 0) {
		t.Fatalf("exact boundary did not round trip")
	}
}

func TestForwardFirstGroupAllCompressed(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	resp := NewForwardResponder(5)
	req := NewForwardRequester(5)
	h := randomMatrix(rng, 6, 10)
	payload, stats := resp.Respond(h, 0, 4)
	if stats.Exact || stats.Predicted != 0 {
		t.Fatalf("first-group stats wrong: %+v", stats)
	}
	got := req.Parse(payload, 0)
	want := compress.Compress(h, 4).Decompress()
	if !got.Equal(want, 1e-6) {
		t.Fatalf("first-group payload should be plain compression")
	}
}

func TestForwardPredictedWinsOnLinearTrend(t *testing.T) {
	// Embeddings drifting at an exactly constant rate: after one trend
	// boundary, the predictor is error-free, so almost all vertices should
	// select SelPredicted and the payload should carry (almost) no rows.
	const ttr = 4
	resp := NewForwardResponder(ttr)
	req := NewForwardRequester(ttr)
	rows, cols := 8, 6
	base := tensor.New(rows, cols)
	rate := tensor.New(rows, cols)
	rng := rand.New(rand.NewSource(3))
	for i := range base.Data {
		base.Data[i] = rng.Float32()
		rate.Data[i] = 0.01 * rng.Float32()
	}
	at := func(t int) *tensor.Matrix { return base.Add(rate.Scale(float32(t))) }

	// The first boundary (t=Ttr−1) has no prior baseline, so M_cr is only
	// meaningful from the second boundary (t=2·Ttr−1) on.
	var selectedBytes int
	for it := 0; it < 3*ttr; it++ {
		h := at(it)
		payload, stats := resp.Respond(h, it, 2)
		got := req.Parse(payload, it)
		if it >= 2*ttr && !stats.Exact {
			if stats.Predicted < stats.Rows {
				t.Fatalf("iteration %d: only %d/%d predicted on perfect linear trend", it, stats.Predicted, stats.Rows)
			}
			selectedBytes = len(payload)
			if !got.Equal(h, 1e-4) {
				t.Fatalf("iteration %d: prediction inexact", it)
			}
		}
	}
	// All rows predicted → filtered compressed matrix is empty; payload is
	// just the selector plus headers.
	if selectedBytes > 64 {
		t.Fatalf("all-predicted payload is %d bytes, expected tiny", selectedBytes)
	}
}

func TestForwardCompensationBeatsPlainCompression(t *testing.T) {
	// A slow random walk: the trend predictor captures most of the motion,
	// so ReqEC reconstruction error must be below compression-only error.
	const ttr, bits = 4, 2
	rng := rand.New(rand.NewSource(4))
	resp := NewForwardResponder(ttr)
	req := NewForwardRequester(ttr)
	rows, cols := 20, 16
	h := randomMatrix(rng, rows, cols)
	drift := tensor.New(rows, cols)
	for i := range drift.Data {
		drift.Data[i] = 0.02 * (rng.Float32() - 0.5)
	}
	var ecErr, cpErr float64
	for it := 0; it < 4*ttr; it++ {
		payload, _ := resp.Respond(h, it, bits)
		got := req.Parse(payload, it)
		ecErr += got.Sub(h).AbsSum()
		cpErr += compress.Compress(h, bits).Decompress().Sub(h).AbsSum()
		h = h.Add(drift)
		for i := range h.Data {
			h.Data[i] += 0.002 * float32(rng.NormFloat64())
		}
	}
	if ecErr >= cpErr {
		t.Fatalf("ReqEC error %v not below compression-only %v", ecErr, cpErr)
	}
}

func TestForwardRequesterResponderStayInSync(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ttr := 2 + rng.Intn(5)
		resp := NewForwardResponder(ttr)
		req := NewForwardRequester(ttr)
		rows, cols := 1+rng.Intn(10), 1+rng.Intn(10)
		h := randomMatrix(rng, rows, cols)
		for it := 0; it < 3*ttr; it++ {
			payload, _ := resp.Respond(h, it, 4)
			got := req.Parse(payload, it)
			if got.Rows != rows || got.Cols != cols {
				return false
			}
			// Reconstruction must never be wildly off (bounded by domain).
			if got.Sub(h).MaxAbs() > 2 {
				return false
			}
			for i := range h.Data {
				h.Data[i] += 0.01 * float32(rng.NormFloat64())
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestForwardInvalidTtrPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewForwardResponder(1) },
		func() { NewForwardRequester(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestBitTunerTransitions(t *testing.T) {
	bt := NewBitTuner(4)
	bt.Update(0.7) // too lossy → double
	if bt.Bits != 8 {
		t.Fatalf("Bits = %d, want 8", bt.Bits)
	}
	bt.Update(0.9)
	bt.Update(0.9)
	if bt.Bits != 16 {
		t.Fatalf("Bits capped wrong: %d", bt.Bits)
	}
	bt.Update(0.99) // cap at 16
	if bt.Bits != 16 {
		t.Fatalf("Bits exceeded cap: %d", bt.Bits)
	}
	bt.Update(0.5) // in the dead zone → unchanged
	if bt.Bits != 16 {
		t.Fatalf("dead zone changed bits: %d", bt.Bits)
	}
	for i := 0; i < 10; i++ {
		bt.Update(0.1)
	}
	if bt.Bits != 1 {
		t.Fatalf("Bits floor wrong: %d", bt.Bits)
	}
}

func TestBitTunerInvalidInitPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	NewBitTuner(3)
}

func TestBackwardErrorFeedbackAccumulation(t *testing.T) {
	// The defining property of error feedback: the sum of delivered
	// (decompressed) gradients equals the sum of true gradients minus the
	// final residual, so nothing is ever lost permanently.
	rng := rand.New(rand.NewSource(5))
	resp := NewBackwardResponder()
	rows, cols := 10, 8
	sumTrue := tensor.New(rows, cols)
	sumDelivered := tensor.New(rows, cols)
	for it := 0; it < 30; it++ {
		g := tensor.New(rows, cols)
		for i := range g.Data {
			g.Data[i] = float32(rng.NormFloat64())
		}
		sumTrue.AddInPlace(g)
		payload := resp.Respond(g, 2)
		sumDelivered.AddInPlace(ParseMatrix(payload))
	}
	diff := sumTrue.Sub(sumDelivered).FrobeniusNorm()
	if math.Abs(diff-resp.ResidualNorm()) > 1e-3 {
		t.Fatalf("EF identity violated: ‖Σg − ΣM‖ = %v but ‖δ‖ = %v", diff, resp.ResidualNorm())
	}
}

func TestBackwardBeatsPlainCompressionCumulatively(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	resp := NewBackwardResponder()
	rows, cols := 12, 6
	var efCum, cpCum *tensor.Matrix = tensor.New(rows, cols), tensor.New(rows, cols)
	sum := tensor.New(rows, cols)
	for it := 0; it < 40; it++ {
		g := tensor.New(rows, cols)
		for i := range g.Data {
			g.Data[i] = float32(rng.NormFloat64())
		}
		sum.AddInPlace(g)
		efCum.AddInPlace(ParseMatrix(resp.Respond(g, 1)))
		cpCum.AddInPlace(ParseMatrix(RespondCompressOnlyGrad(g, 1)))
	}
	efErr := sum.Sub(efCum).FrobeniusNorm()
	cpErr := sum.Sub(cpCum).FrobeniusNorm()
	if efErr >= cpErr {
		t.Fatalf("cumulative EF error %v not below plain compression %v", efErr, cpErr)
	}
}

// TestTheorem1ResidualBound verifies the paper's Theorem 1 empirically:
// with gradients of bounded norm G and a quantiser that is an
// α-contraction, the residual norm satisfies
// ‖δ_t‖² ≤ (1+α)^{L−l}·G² / (1 − α²(1 + 1/ρ)) for all t.
func TestTheorem1ResidualBound(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const L, l = 3, 1
	resp := NewBackwardResponder()
	rows, cols := 15, 10

	var gBound, alpha float64
	var worstResidual float64
	for it := 0; it < 200; it++ {
		g := tensor.New(rows, cols)
		for i := range g.Data {
			g.Data[i] = float32(rng.NormFloat64())
		}
		if n := g.FrobeniusNorm(); n > gBound {
			gBound = n
		}
		// Measure the contraction factor of this step's quantisation input.
		cpt := g
		if resp.delta != nil {
			cpt = g.Add(resp.delta)
		}
		q := compress.Compress(cpt, 8)
		if n := cpt.FrobeniusNorm(); n > 0 {
			if a := q.Decompress().Sub(cpt).FrobeniusNorm() / n; a > alpha {
				alpha = a
			}
		}
		resp.Respond(g, 8)
		if r := resp.ResidualNorm(); r > worstResidual {
			worstResidual = r
		}
	}
	if alpha >= math.Sqrt2/2 {
		t.Fatalf("quantiser α = %v ≥ √2/2; theorem precondition violated (use more bits)", alpha)
	}
	// Choose ρ per the proof's constraint α < 1/√(1+ρ), ρ > 1.
	rho := 1/(alpha*alpha) - 1
	if rho > 100 {
		rho = 100
	}
	bound := math.Pow(1+alpha, L-l) * gBound * gBound / (1 - alpha*alpha*(1+1/rho))
	if worstResidual*worstResidual > bound {
		t.Fatalf("residual² %v exceeds Theorem 1 bound %v (α=%v, G=%v)", worstResidual*worstResidual, bound, alpha, gBound)
	}
}

func TestParseMatrixSchemes(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	m := randomMatrix(rng, 4, 4)
	if got := ParseMatrix(RespondRaw(m)); !got.Equal(m, 0) {
		t.Fatalf("raw round trip failed")
	}
	got := ParseMatrix(RespondCompressOnly(m, 8))
	if got.Sub(m).MaxAbs() > compress.Compress(m, 8).MaxAbsError()+1e-6 {
		t.Fatalf("compress-only round trip error too large")
	}
}

func TestParseMatrixBadSchemePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	ParseMatrix([]byte{99, 0, 0})
}

func TestParseSelectedWithoutBaselinePanics(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	resp := NewForwardResponder(4)
	h := randomMatrix(rng, 3, 3)
	// Advance the responder past a boundary so it emits selector payloads.
	resp.Respond(h, 3, 2) // boundary (t=3): establishes responder baseline
	payload, _ := resp.Respond(h, 4, 2)
	fresh := NewForwardRequester(4) // requester that missed the baseline
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	fresh.Parse(payload, 4)
}

func BenchmarkForwardRespondSelected(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	resp := NewForwardResponder(10)
	h := randomMatrix(rng, 1024, 64)
	resp.Respond(h, 9, 2) // establish baseline
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp.Respond(h, 10+i%8, 2)
	}
}

func BenchmarkBackwardRespond(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	resp := NewBackwardResponder()
	g := randomMatrix(rng, 1024, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp.Respond(g, 2)
	}
}

func TestMatrixWiseGranularityRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	resp := NewForwardResponder(4)
	resp.Granularity = GranularityMatrix
	req := NewForwardRequester(4)
	h := randomMatrix(rng, 10, 6)
	for it := 0; it < 12; it++ {
		payload, stats := resp.Respond(h, it, 4)
		got := req.Parse(payload, it)
		if got.Rows != 10 || got.Cols != 6 {
			t.Fatalf("iteration %d: wrong shape", it)
		}
		if got.Sub(h).MaxAbs() > 1 {
			t.Fatalf("iteration %d: reconstruction way off", it)
		}
		if stats.Predicted != 0 && stats.Predicted != stats.Rows {
			t.Fatalf("matrix-wise must be all-or-nothing predicted: %+v", stats)
		}
		for i := range h.Data {
			h.Data[i] += 0.01 * float32(rng.NormFloat64())
		}
	}
}

func TestMatrixWisePredictedOnPerfectTrend(t *testing.T) {
	const ttr = 4
	resp := NewForwardResponder(ttr)
	resp.Granularity = GranularityMatrix
	req := NewForwardRequester(ttr)
	rng := rand.New(rand.NewSource(22))
	base := randomMatrix(rng, 6, 4)
	rate := tensor.New(6, 4)
	for i := range rate.Data {
		rate.Data[i] = 0.02 * rng.Float32()
	}
	var predictedPayload int
	for it := 0; it < 3*ttr; it++ {
		h := base.Add(rate.Scale(float32(it)))
		payload, stats := resp.Respond(h, it, 1)
		got := req.Parse(payload, it)
		if it >= 2*ttr && !stats.Exact {
			if stats.Predicted != stats.Rows {
				t.Fatalf("iteration %d: matrix-wise did not pick predicted on a perfect trend", it)
			}
			predictedPayload = len(payload)
			if !got.Equal(h, 1e-4) {
				t.Fatalf("iteration %d: prediction inexact", it)
			}
		}
	}
	if predictedPayload > 16 {
		t.Fatalf("matrix-wise predicted payload %d bytes, expected a handful", predictedPayload)
	}
}

func TestMatrixWiseVsVertexWisePayloadTradeoff(t *testing.T) {
	// Vertex-wise pays 2 bits per vertex but can drop individual rows;
	// matrix-wise pays 1 byte total but ships everything when any row needs
	// data. On embeddings where half the rows follow the trend, vertex-wise
	// should produce smaller payloads.
	const ttr, bits = 4, 8
	rngV := rand.New(rand.NewSource(23))
	vertexResp := NewForwardResponder(ttr)
	matrixResp := NewForwardResponder(ttr)
	matrixResp.Granularity = GranularityMatrix
	rows, cols := 40, 16
	base := randomMatrix(rngV, rows, cols)
	rate := tensor.New(rows, cols)
	for i := 0; i < rows/2; i++ { // half the rows drift linearly
		for j := 0; j < cols; j++ {
			rate.Set(i, j, 0.01*rngV.Float32())
		}
	}
	var vBytes, mBytes int
	for it := 0; it < 3*ttr; it++ {
		h := base.Add(rate.Scale(float32(it)))
		// Non-trending rows jitter so compression is needed for them.
		for i := rows / 2; i < rows; i++ {
			for j := 0; j < cols; j++ {
				h.Set(i, j, h.At(i, j)+0.3*rngV.Float32())
			}
		}
		pv, _ := vertexResp.Respond(h, it, bits)
		pm, _ := matrixResp.Respond(h, it, bits)
		if it >= 2*ttr {
			vBytes += len(pv)
			mBytes += len(pm)
		}
	}
	if vBytes >= mBytes {
		t.Fatalf("vertex-wise %dB not below matrix-wise %dB on mixed-trend rows", vBytes, mBytes)
	}
}

func TestTopKResponderErrorFeedback(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	resp := NewTopKResponder(2)
	rows, cols := 10, 8
	sumTrue := tensor.New(rows, cols)
	sumSent := tensor.New(rows, cols)
	for it := 0; it < 40; it++ {
		g := tensor.New(rows, cols)
		for i := range g.Data {
			g.Data[i] = float32(rng.NormFloat64())
		}
		sumTrue.AddInPlace(g)
		sumSent.AddInPlace(ParseMatrix(resp.Respond(g)))
	}
	diff := sumTrue.Sub(sumSent).FrobeniusNorm()
	if math.Abs(diff-resp.ResidualNorm()) > 1e-3 {
		t.Fatalf("Top-K EF identity violated: %v vs %v", diff, resp.ResidualNorm())
	}
}

func TestTopKResponderPayloadWithinBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	resp := NewTopKResponder(2)
	g := randomMatrix(rng, 64, 32)
	payload := resp.Respond(g)
	// 2-bit budget on 2048 elements = 512 bytes; allow headers.
	if len(payload) > 512+64 {
		t.Fatalf("Top-K payload %d bytes exceeds 2-bit budget", len(payload))
	}
}

func TestNewTopKResponderInvalidBitsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	NewTopKResponder(3)
}
