package experiments

import (
	"fmt"

	"ecgraph/internal/core"
	"ecgraph/internal/metrics"
	"ecgraph/internal/worker"
)

func init() {
	register("fig6", "FP convergence under compression-only vs ReqEC-FP across bit widths", runFig6)
	register("fig7", "BP convergence under compression-only vs ResEC-BP across bit widths", runFig7)
}

// runFig6 reproduces Fig. 6: test accuracy per epoch for no compression,
// compression-only (Cp-fp-i) and requesting-end compensation (ReqEC-FP-i)
// at several bit widths, forward path only (BP stays raw).
func runFig6(opt Options) error {
	dsets := []string{"cora", "pubmed", "reddit"}
	bits := []int{1, 2, 4, 8}
	if opt.Quick {
		dsets = []string{"cora"}
		bits = []int{1, 4}
	}
	for _, ds := range dsets {
		var series []metrics.Series
		summary := metrics.NewTable(
			fmt.Sprintf("Fig. 6 summary — %s (best test accuracy / best epoch)", ds),
			"arm", "best test acc", "best epoch")

		run := func(label string, opts worker.Options) error {
			res, err := core.Train(engineConfig(ds, defaultLayers[ds], opts, opt.Quick))
			if err != nil {
				return fmt.Errorf("fig6 %s %s: %w", ds, label, err)
			}
			series = append(series, metrics.Series{Label: label, Values: testCurve(res)})
			summary.AddRowStrings(label, fmt.Sprintf("%.4f", res.TestAccuracy), fmt.Sprintf("%d", res.BestEpoch))
			return nil
		}

		if err := run("Non-cp", worker.Options{}); err != nil {
			return err
		}
		for _, b := range bits {
			if err := run(fmt.Sprintf("Cp-fp-%d", b), worker.Options{
				FPScheme: worker.SchemeCompress, FPBits: b,
			}); err != nil {
				return err
			}
		}
		for _, b := range bits {
			if err := run(fmt.Sprintf("ReqEC-FP-%d", b), worker.Options{
				FPScheme: worker.SchemeEC, FPBits: b, Ttr: 10,
			}); err != nil {
				return err
			}
		}
		metrics.RenderSeries(opt.Out, fmt.Sprintf("Fig. 6 — %s: test accuracy per epoch", ds), seriesStep(opt), series)
		summary.Render(opt.Out)
	}
	return nil
}

// runFig7 reproduces Fig. 7: the backward-path analogue with Cp-bp-i and
// ResEC-BP-i (FP stays raw).
func runFig7(opt Options) error {
	dsets := []string{"cora", "reddit"}
	bits := []int{1, 2, 4}
	if opt.Quick {
		dsets = []string{"cora"}
		bits = []int{1, 4}
	}
	for _, ds := range dsets {
		var series []metrics.Series
		summary := metrics.NewTable(
			fmt.Sprintf("Fig. 7 summary — %s (best test accuracy / best epoch)", ds),
			"arm", "best test acc", "best epoch")

		run := func(label string, opts worker.Options) error {
			res, err := core.Train(engineConfig(ds, defaultLayers[ds], opts, opt.Quick))
			if err != nil {
				return fmt.Errorf("fig7 %s %s: %w", ds, label, err)
			}
			series = append(series, metrics.Series{Label: label, Values: testCurve(res)})
			summary.AddRowStrings(label, fmt.Sprintf("%.4f", res.TestAccuracy), fmt.Sprintf("%d", res.BestEpoch))
			return nil
		}

		if err := run("Non-cp", worker.Options{}); err != nil {
			return err
		}
		for _, b := range bits {
			if err := run(fmt.Sprintf("Cp-bp-%d", b), worker.Options{
				BPScheme: worker.SchemeCompress, BPBits: b,
			}); err != nil {
				return err
			}
		}
		for _, b := range bits {
			if err := run(fmt.Sprintf("ResEC-BP-%d", b), worker.Options{
				BPScheme: worker.SchemeEC, BPBits: b,
			}); err != nil {
				return err
			}
		}
		metrics.RenderSeries(opt.Out, fmt.Sprintf("Fig. 7 — %s: test accuracy per epoch", ds), seriesStep(opt), series)
		summary.Render(opt.Out)
	}
	return nil
}

func seriesStep(opt Options) int {
	if opt.Quick {
		return 3
	}
	return 5
}
