package experiments

import (
	"fmt"

	"ecgraph/internal/baselines"
	"ecgraph/internal/core"
	"ecgraph/internal/metrics"
	"ecgraph/internal/nn"
	"ecgraph/internal/partition"
	"ecgraph/internal/worker"
)

func init() {
	register("table2", "algorithm cost analysis: ML-centered vs EC-Graph memory/compute/communication", runTable2)
	register("table4", "training time per epoch across systems, datasets and layer counts", runTable4)
	register("table5", "test accuracy across systems and datasets", runTable5)
}

// ecBits is the per-dataset (ReqEC-FP, ResEC-BP) bit configuration used
// wherever the paper reports plain "EC-Graph". The paper chooses these per
// dataset "such that the models can converge to the near-optimal test
// accuracy" (§V-C); applying that methodology to the reproduction's
// synthetic presets lands on the paper's own values except for the OGBN
// presets, whose sparser training signal needs 4-bit gradients
// (EXPERIMENTS.md records the deviation).
var ecBits = map[string][2]int{
	"cora":          {2, 2},
	"pubmed":        {2, 2},
	"reddit":        {2, 4},
	"ogbn-products": {4, 4},
	"ogbn-papers":   {4, 8},
}

// ecGraphOptions is the full EC-Graph configuration (ReqEC-FP + ResEC-BP at
// the fixed §V-C per-dataset bits). The adaptive Bit-Tuner is a separate
// Fig. 8 arm (ReqEC-adapt), not part of the Table IV/V configuration.
func ecGraphOptions(dataset string) worker.Options {
	bits := ecBits[dataset]
	return worker.Options{
		FPScheme: worker.SchemeEC, FPBits: bits[0],
		BPScheme: worker.SchemeEC, BPBits: bits[1],
		Ttr: 10,
	}
}

func blockConfig(dataset string, layers int, opt Options) baselines.BlockConfig {
	return baselines.BlockConfig{
		Dataset: load(dataset),
		Kind:    nn.KindGCN,
		Hidden:  hiddenFor(dataset, layers, opt.Quick),
		Workers: clusterWorkers(opt.Quick),
		Servers: 2,
		Epochs:  epochsFor(dataset, opt.Quick),
		LR:      0.01,
		Seed:    1,
	}
}

// timingEpochs is how many epochs the per-epoch-time measurements run.
func timingEpochs(opt Options) int {
	if opt.Quick {
		return 3
	}
	return 5
}

// avgEpochSkipWarmup averages SimSeconds over all epochs but the first.
func avgEpochSkipWarmup(res *core.Result) float64 {
	if len(res.Epochs) <= 1 {
		return res.AvgEpochSeconds()
	}
	var sum float64
	for _, e := range res.Epochs[1:] {
		sum += e.SimSeconds
	}
	return sum / float64(len(res.Epochs)-1)
}

// runTable2 reproduces Table II: the analytic memory/compute/communication
// costs of ML-centered frameworks vs EC-Graph, checked against measured
// counters from short runs of AliGraph-FG (ML-centered) and EC-Graph with
// and without compression.
func runTable2(opt Options) error {
	ds := "ogbn-products"
	if opt.Quick {
		ds = "cora"
	}
	layers := defaultLayers[ds]

	analytic := metrics.NewTable("Table II (analytic) — per-vertex asymptotic costs",
		"cost", "ML-centered", "EC-Graph")
	analytic.AddRowStrings("memory space", "O(ḡ^L · d̄)", "O(ḡ · d̄)")
	analytic.AddRowStrings("computation", "O(ḡ^(L−1) · d̄²)", "O(L · d̄²)")
	analytic.AddRowStrings("communication", "O(ḡ^L · d₀), once", "O(T·L·ḡ_rmt·d̄ / (32/B)) over training")
	analytic.Render(opt.Out)

	bcfg := blockConfig(ds, layers, opt)
	bcfg.Epochs = timingEpochs(opt)
	ml, err := baselines.AliGraphFG(bcfg)
	if err != nil {
		return fmt.Errorf("table2 AliGraph-FG: %w", err)
	}
	ecRaw, err := core.Train(withEpochs(engineConfig(ds, layers, worker.Options{}, opt.Quick), timingEpochs(opt)))
	if err != nil {
		return fmt.Errorf("table2 EC-Graph raw: %w", err)
	}
	bits := fig8Bits[ds]
	ecCp, err := core.Train(withEpochs(engineConfig(ds, layers, worker.Options{
		FPScheme: worker.SchemeEC, FPBits: bits[2],
		BPScheme: worker.SchemeEC, BPBits: bits[3], Ttr: 10,
	}, opt.Quick), timingEpochs(opt)))
	if err != nil {
		return fmt.Errorf("table2 EC-Graph ec: %w", err)
	}

	measured := metrics.NewTable(
		fmt.Sprintf("Table II (measured) — %s, %d layers, %d workers", ds, layers, clusterWorkers(opt.Quick)),
		"metric", "ML-centered (AliGraph-FG)", "EC-Graph (Non-cp)", "EC-Graph (EC)")
	measured.AddRowStrings("cached floats (all workers)",
		fmt.Sprintf("%d", sum64(ml.MemoryFloats)),
		fmt.Sprintf("%d", sum64(ecRaw.MemoryFloats)),
		fmt.Sprintf("%d", sum64(ecCp.MemoryFloats)))
	measured.AddRowStrings("preprocessing comm time",
		metrics.FormatSeconds(ml.PreprocessSeconds),
		metrics.FormatSeconds(ecRaw.PreprocessSeconds),
		metrics.FormatSeconds(ecCp.PreprocessSeconds))
	measured.AddRowStrings("avg epoch bytes",
		metrics.FormatBytes(ml.AvgEpochBytes()),
		metrics.FormatBytes(ecRaw.AvgEpochBytes()),
		metrics.FormatBytes(ecCp.AvgEpochBytes()))
	measured.AddRowStrings("avg epoch time",
		metrics.FormatSeconds(avgEpochSkipWarmup(ml)),
		metrics.FormatSeconds(avgEpochSkipWarmup(ecRaw)),
		metrics.FormatSeconds(avgEpochSkipWarmup(ecCp)))
	measured.Render(opt.Out)
	return nil
}

func sum64(v []int64) int64 {
	var s int64
	for _, x := range v {
		s += x
	}
	return s
}

func withEpochs(cfg core.Config, epochs int) core.Config {
	cfg.Epochs = epochs
	return cfg
}

// table4Systems enumerates the Table IV rows. Cells the paper leaves "-"
// (system cannot run that configuration on the authors' clusters) are
// skipped for fidelity.
type table4System struct {
	name string
	// skip reports whether the paper shows "-" for this cell.
	skip func(dataset string, layers int) bool
	run  func(dataset string, layers int, opt Options) (*core.Result, error)
}

func table4Rows() []table4System {
	return []table4System{
		{
			name: "DGL",
			skip: func(ds string, layers int) bool {
				return ds == "ogbn-papers" || (ds == "ogbn-products" && layers == 4)
			},
			run: func(ds string, layers int, opt Options) (*core.Result, error) {
				return baselines.Standalone(load(ds), nn.KindGCN, hiddenFor(ds, layers, opt.Quick),
					timingEpochs(opt), 0.01, 1, baselines.KernelDGL), nil
			},
		},
		{
			name: "PyG",
			skip: func(ds string, layers int) bool { return ds != "cora" && ds != "pubmed" },
			run: func(ds string, layers int, opt Options) (*core.Result, error) {
				return baselines.Standalone(load(ds), nn.KindGCN, hiddenFor(ds, layers, opt.Quick),
					timingEpochs(opt), 0.01, 1, baselines.KernelPyG), nil
			},
		},
		{
			name: "DistGNN",
			skip: func(ds string, layers int) bool { return ds == "ogbn-papers" },
			run: func(ds string, layers int, opt Options) (*core.Result, error) {
				return baselines.DistGNN(withEpochs(engineConfig(ds, layers, worker.Options{}, opt.Quick), timingEpochs(opt)), 5)
			},
		},
		{
			name: "EC-Graph",
			skip: func(string, int) bool { return false },
			run: func(ds string, layers int, opt Options) (*core.Result, error) {
				return core.Train(withEpochs(engineConfig(ds, layers, ecGraphOptions(ds), opt.Quick), timingEpochs(opt)))
			},
		},
		{
			name: "DistDGL",
			skip: func(ds string, layers int) bool { return ds == "ogbn-papers" },
			run: func(ds string, layers int, opt Options) (*core.Result, error) {
				cfg := blockConfig(ds, layers, opt)
				cfg.Epochs = timingEpochs(opt)
				return baselines.DistDGL(cfg, samplingFanouts(ds, layers))
			},
		},
		{
			name: "AGL",
			skip: func(ds string, layers int) bool {
				return ds == "ogbn-papers" || (ds == "ogbn-products" && layers == 4)
			},
			run: func(ds string, layers int, opt Options) (*core.Result, error) {
				cfg := blockConfig(ds, layers, opt)
				cfg.Epochs = timingEpochs(opt)
				return baselines.AGL(cfg, samplingFanouts(ds, layers))
			},
		},
		{
			name: "AliGraph-FG",
			skip: func(ds string, layers int) bool { return ds == "ogbn-papers" },
			run: func(ds string, layers int, opt Options) (*core.Result, error) {
				cfg := blockConfig(ds, layers, opt)
				cfg.Epochs = timingEpochs(opt)
				return baselines.AliGraphFG(cfg)
			},
		},
		{
			name: "EC-Graph-S",
			skip: func(string, int) bool { return false },
			run: func(ds string, layers int, opt Options) (*core.Result, error) {
				cfg := blockConfig(ds, layers, opt)
				cfg.Epochs = timingEpochs(opt)
				return baselines.ECGraphS(cfg, samplingFanouts(ds, layers), 8)
			},
		},
	}
}

// samplingFanouts returns Table IV's sampling ratios, extending the deepest
// listed configuration when layers exceed the table (never happens for 2-4).
func samplingFanouts(dataset string, layers int) []int {
	return fanouts[dataset][layers]
}

// runTable4 reproduces Table IV: training time per epoch for every system
// on every dataset at 2, 3 and 4 layers.
func runTable4(opt Options) error {
	dsets := []string{"cora", "pubmed", "reddit", "ogbn-products", "ogbn-papers"}
	layersList := []int{2, 3, 4}
	if opt.Quick {
		dsets = []string{"cora"}
		layersList = []int{2}
	}
	for _, ds := range dsets {
		table := metrics.NewTable(
			fmt.Sprintf("Table IV — %s: training time per epoch (simulated cluster seconds)", ds),
			append([]string{"system"}, layerHeaders(layersList)...)...)
		for _, sys := range table4Rows() {
			row := []string{sys.name}
			for _, layers := range layersList {
				if sys.skip(ds, layers) {
					row = append(row, "-")
					continue
				}
				res, err := sys.run(ds, layers, opt)
				if err != nil {
					return fmt.Errorf("table4 %s %s %d-layer: %w", ds, sys.name, layers, err)
				}
				row = append(row, metrics.FormatSeconds(avgEpochSkipWarmup(res)))
			}
			table.AddRowStrings(row...)
		}
		table.Render(opt.Out)
	}
	return nil
}

func layerHeaders(layersList []int) []string {
	out := make([]string, len(layersList))
	for i, l := range layersList {
		out[i] = fmt.Sprintf("%d-layer", l)
	}
	return out
}

// runTable5 reproduces Table V: converged test accuracy per system at the
// paper's default depth for each dataset.
func runTable5(opt Options) error {
	dsets := []string{"cora", "pubmed", "reddit", "ogbn-products", "ogbn-papers"}
	if opt.Quick {
		dsets = []string{"cora"}
	}
	table := metrics.NewTable("Table V — test accuracy", append([]string{"system"}, dsets...)...)
	for _, sys := range table4Rows() {
		row := []string{sys.name}
		for _, ds := range dsets {
			layers := defaultLayers[ds]
			if sys.skip(ds, layers) {
				row = append(row, "-")
				continue
			}
			res, err := runForAccuracy(sys, ds, layers, opt)
			if err != nil {
				return fmt.Errorf("table5 %s %s: %w", sys.name, ds, err)
			}
			row = append(row, fmt.Sprintf("%.2f%%", res.TestAccuracy*100))
		}
		table.AddRowStrings(row...)
	}
	table.Render(opt.Out)
	return nil
}

// runForAccuracy reruns a system with the full convergence epoch budget
// rather than the timing budget.
func runForAccuracy(sys table4System, ds string, layers int, opt Options) (*core.Result, error) {
	switch sys.name {
	case "DGL":
		return baselines.Standalone(load(ds), nn.KindGCN, hiddenFor(ds, layers, opt.Quick),
			epochsFor(ds, opt.Quick), 0.01, 1, baselines.KernelDGL), nil
	case "PyG":
		return baselines.Standalone(load(ds), nn.KindGCN, hiddenFor(ds, layers, opt.Quick),
			epochsFor(ds, opt.Quick), 0.01, 1, baselines.KernelPyG), nil
	case "DistGNN":
		return baselines.DistGNN(engineConfig(ds, layers, worker.Options{}, opt.Quick), 5)
	case "EC-Graph":
		return core.Train(engineConfig(ds, layers, ecGraphOptions(ds), opt.Quick))
	case "DistDGL":
		return baselines.DistDGL(blockConfig(ds, layers, opt), samplingFanouts(ds, layers))
	case "AGL":
		return baselines.AGL(blockConfig(ds, layers, opt), samplingFanouts(ds, layers))
	case "AliGraph-FG":
		return baselines.AliGraphFG(blockConfig(ds, layers, opt))
	case "EC-Graph-S":
		return baselines.ECGraphS(blockConfig(ds, layers, opt), samplingFanouts(ds, layers), 8)
	default:
		return nil, fmt.Errorf("unknown system %q", sys.name)
	}
}

// runPartitionerBench exists for fig11 but lives here to share helpers.
func partitionerByName(name string) partition.Partitioner {
	p, err := partition.ByName(name)
	if err != nil {
		panic(err)
	}
	return p
}
