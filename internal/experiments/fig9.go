package experiments

import (
	"fmt"

	"ecgraph/internal/core"
	"ecgraph/internal/metrics"
	"ecgraph/internal/worker"
)

func init() {
	register("fig9", "end-to-end time: preprocessing plus full convergence, with EC-Graph speedups", runFig9)
	register("fig10", "OGBN-Papers: EC-Graph vs EC-Graph-S epoch time and accuracy across depths", runFig10)
	register("fig11", "scalability with the number of machines under Hash and METIS", runFig11)
}

// runFig9 reproduces Fig. 9: end-to-end time (preprocessing + training to
// convergence) for every system, with EC-Graph's speedup per system — the
// paper highlights OGBN-Products for the speedup readout.
func runFig9(opt Options) error {
	ds := "ogbn-products"
	if opt.Quick {
		ds = "cora"
	}
	layers := defaultLayers[ds]

	type row struct {
		name              string
		pre, train, total float64
		convergedEpoch    int
	}
	var rows []row

	// Every system converges against the same target — 99.5% of the
	// uncompressed run's best validation accuracy — the paper's
	// "near-optimal accuracy" criterion.
	noncp, err := core.Train(engineConfig(ds, layers, worker.Options{}, opt.Quick))
	if err != nil {
		return fmt.Errorf("fig9 Non-cp: %w", err)
	}
	target := 0.995 * noncp.BestVal

	add := func(name string, res *core.Result) {
		epoch, train := convergenceToTarget(res, target)
		rows = append(rows, row{name, res.PreprocessSeconds, train, res.PreprocessSeconds + train, epoch})
	}
	add("Non-cp", noncp)
	for _, sys := range table4Rows() {
		if sys.name == "DGL" || sys.name == "PyG" {
			continue // Fig. 9 compares the distributed systems
		}
		if sys.skip(ds, layers) {
			continue
		}
		res, err := runForAccuracy(sys, ds, layers, opt)
		if err != nil {
			return fmt.Errorf("fig9 %s: %w", sys.name, err)
		}
		add(sys.name, res)
	}

	var ecTotal float64
	for _, r := range rows {
		if r.name == "EC-Graph" {
			ecTotal = r.total
		}
	}
	table := metrics.NewTable(
		fmt.Sprintf("Fig. 9 — %s: end-to-end time (%d layers, %d workers)", ds, layers, clusterWorkers(opt.Quick)),
		"system", "preprocess", "train-to-converge", "total", "conv epoch", "EC-Graph speedup")
	for _, r := range rows {
		table.AddRow(r.name,
			metrics.Seconds(r.pre),
			metrics.Seconds(r.train),
			metrics.Seconds(r.total),
			r.convergedEpoch,
			metrics.Ratio(metrics.Speedup(r.total, ecTotal)))
	}
	table.Render(opt.Out)
	return nil
}

// runFig10 reproduces Fig. 10: EC-Graph and EC-Graph-S on the largest
// dataset across 2/3/4 layers — per-epoch time and best accuracy (the
// paper runs OGBN-Papers on the 6-machine cluster).
func runFig10(opt Options) error {
	ds := "ogbn-papers"
	if opt.Quick {
		ds = "pubmed"
	}
	layersList := []int{2, 3, 4}
	if opt.Quick {
		layersList = []int{2}
	}
	table := metrics.NewTable(
		fmt.Sprintf("Fig. 10 — %s: EC-Graph vs EC-Graph-S", ds),
		"layers", "EC-Graph s/epoch", "EC-Graph acc", "EC-Graph-S s/epoch", "EC-Graph-S acc")
	for _, layers := range layersList {
		full, err := core.Train(engineConfig(ds, layers, ecGraphOptions(ds), opt.Quick))
		if err != nil {
			return fmt.Errorf("fig10 EC-Graph %s %d-layer: %w", ds, layers, err)
		}
		sampledRes, err := runForAccuracy(table4System{name: "EC-Graph-S"}, ds, layers, opt)
		if err != nil {
			return fmt.Errorf("fig10 EC-Graph-S %d-layer: %w", layers, err)
		}
		table.AddRowStrings(
			fmt.Sprintf("%d", layers),
			metrics.FormatSeconds(avgEpochSkipWarmup(full)),
			fmt.Sprintf("%.4f", full.TestAccuracy),
			metrics.FormatSeconds(avgEpochSkipWarmup(sampledRes)),
			fmt.Sprintf("%.4f", sampledRes.TestAccuracy))
	}
	table.Render(opt.Out)
	return nil
}

// runFig11 reproduces Fig. 11: EC-Graph epoch time against the number of
// machines, under Hash and METIS partitioning.
func runFig11(opt Options) error {
	ds := "ogbn-products"
	workerCounts := []int{2, 4, 8, 12}
	if opt.Quick {
		ds = "cora"
		workerCounts = []int{2, 4}
	}
	layers := defaultLayers[ds]
	table := metrics.NewTable(
		fmt.Sprintf("Fig. 11 — %s: epoch time vs machines", ds),
		"workers", "hash s/epoch", "metis s/epoch", "hash cut", "metis cut")
	for _, nw := range workerCounts {
		var times [2]float64
		var cuts [2]int
		for i, pname := range []string{"hash", "metis"} {
			cfg := engineConfig(ds, layers, ecGraphOptions(ds), opt.Quick)
			cfg.Workers = nw
			cfg.Epochs = timingEpochs(opt)
			cfg.Partitioner = partitionerByName(pname)
			res, err := core.Train(cfg)
			if err != nil {
				return fmt.Errorf("fig11 %s %d workers: %w", pname, nw, err)
			}
			times[i] = avgEpochSkipWarmup(res)
			cuts[i] = res.PartitionStats.EdgeCut
		}
		table.AddRowStrings(
			fmt.Sprintf("%d", nw),
			metrics.FormatSeconds(times[0]),
			metrics.FormatSeconds(times[1]),
			fmt.Sprintf("%d", cuts[0]),
			fmt.Sprintf("%d", cuts[1]))
	}
	table.Render(opt.Out)
	return nil
}
