package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestNamesCoverEveryPaperArtefact(t *testing.T) {
	want := []string{"fig6", "fig7", "fig8", "table2", "table4", "table5", "fig9", "fig10", "fig11", "thm1", "gat"}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names() = %v, want %v", got, want)
		}
	}
	for _, n := range want {
		if Describe(n) == "" {
			t.Fatalf("experiment %s has no description", n)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := Run("fig99", Options{Out: &buf}); err == nil {
		t.Fatalf("expected error for unknown experiment")
	}
}

func TestRunRequiresWriter(t *testing.T) {
	if err := Run("fig6", Options{}); err == nil {
		t.Fatalf("expected error for missing writer")
	}
}

// runQuick executes one experiment in quick mode and returns its output.
// Even quick mode trains several full configurations, so these are the
// heaviest tests in the repo; -short (the CI race run) skips them.
func runQuick(t *testing.T, name string) string {
	t.Helper()
	if testing.Short() {
		t.Skipf("skipping experiment %s in short mode", name)
	}
	var buf bytes.Buffer
	if err := Run(name, Options{Quick: true, Out: &buf}); err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	out := buf.String()
	if len(out) == 0 {
		t.Fatalf("%s produced no output", name)
	}
	return out
}

func TestFig6Quick(t *testing.T) {
	out := runQuick(t, "fig6")
	for _, want := range []string{"Non-cp", "Cp-fp-1", "ReqEC-FP-1", "test accuracy per epoch"} {
		if !strings.Contains(out, want) {
			t.Fatalf("fig6 output missing %q:\n%s", want, out)
		}
	}
}

func TestFig7Quick(t *testing.T) {
	out := runQuick(t, "fig7")
	for _, want := range []string{"Cp-bp-1", "ResEC-BP-1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("fig7 output missing %q", want)
		}
	}
}

func TestFig8Quick(t *testing.T) {
	out := runQuick(t, "fig8")
	for _, want := range []string{"Non-cp", "ReqEC-adapt", "speedup", "1.00x"} {
		if !strings.Contains(out, want) {
			t.Fatalf("fig8 output missing %q:\n%s", want, out)
		}
	}
}

func TestTable2Quick(t *testing.T) {
	out := runQuick(t, "table2")
	for _, want := range []string{"O(ḡ^L · d̄)", "cached floats", "avg epoch bytes"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table2 output missing %q", want)
		}
	}
}

func TestTable4Quick(t *testing.T) {
	out := runQuick(t, "table4")
	for _, want := range []string{"DGL", "EC-Graph-S", "AliGraph-FG", "2-layer"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table4 output missing %q:\n%s", want, out)
		}
	}
}

func TestTable5Quick(t *testing.T) {
	out := runQuick(t, "table5")
	if !strings.Contains(out, "%") || !strings.Contains(out, "EC-Graph") {
		t.Fatalf("table5 output malformed:\n%s", out)
	}
}

func TestFig9Quick(t *testing.T) {
	out := runQuick(t, "fig9")
	for _, want := range []string{"preprocess", "EC-Graph speedup", "Non-cp"} {
		if !strings.Contains(out, want) {
			t.Fatalf("fig9 output missing %q:\n%s", want, out)
		}
	}
}

func TestFig10Quick(t *testing.T) {
	out := runQuick(t, "fig10")
	if !strings.Contains(out, "EC-Graph-S s/epoch") {
		t.Fatalf("fig10 output malformed:\n%s", out)
	}
}

func TestThm1Quick(t *testing.T) {
	out := runQuick(t, "thm1")
	for _, want := range []string{"Theorem 1 trace", "measured α", "true"} {
		if !strings.Contains(out, want) {
			t.Fatalf("thm1 output missing %q:\n%s", want, out)
		}
	}
}

func TestGATExperimentQuick(t *testing.T) {
	out := runQuick(t, "gat")
	for _, want := range []string{"Distributed GAT", "EC cuts GAT traffic"} {
		if !strings.Contains(out, want) {
			t.Fatalf("gat output missing %q:\n%s", want, out)
		}
	}
}

func TestFig11Quick(t *testing.T) {
	out := runQuick(t, "fig11")
	for _, want := range []string{"hash s/epoch", "metis s/epoch", "metis cut"} {
		if !strings.Contains(out, want) {
			t.Fatalf("fig11 output missing %q:\n%s", want, out)
		}
	}
}
