package experiments

import (
	"fmt"

	"ecgraph/internal/core"
	"ecgraph/internal/gatdist"
	"ecgraph/internal/metrics"
	"ecgraph/internal/worker"
)

func init() {
	register("gat", "distributed GAT on the EC-Graph runtime (§III-B): raw vs EC schemes vs GCN", runGAT)
}

// runGAT exercises §III-B's model-generality claim end to end: a
// distributed multi-head GAT trained on the same runtime, with and without
// error-compensated compression, next to the GCN numbers for scale.
func runGAT(opt Options) error {
	ds := "cora"
	heads := 4
	hidden := 16
	if opt.Quick {
		heads = 1
		hidden = 8
	}
	d := load(ds)
	epochs := epochsFor(ds, opt.Quick)
	workers := clusterWorkers(opt.Quick)

	table := metrics.NewTable(
		fmt.Sprintf("Distributed GAT — %s, %d workers, %d heads", ds, workers, heads),
		"system", "scheme", "test acc", "s/epoch", "epoch traffic")

	add := func(name, scheme string, res *core.Result) {
		table.AddRowStrings(name, scheme,
			fmt.Sprintf("%.4f", res.TestAccuracy),
			metrics.FormatSeconds(avgEpochSkipWarmup(res)),
			metrics.FormatBytes(res.AvgEpochBytes()))
	}

	gcn, err := core.Train(engineConfig(ds, 2, ecGraphOptions(ds), opt.Quick))
	if err != nil {
		return fmt.Errorf("gat experiment (gcn reference): %w", err)
	}
	add("GCN", "EC", gcn)

	base := gatdist.Config{
		Dataset: d, Hidden: []int{hidden}, Heads: heads,
		Workers: workers, Servers: 2, Epochs: epochs, LR: 0.01, Seed: 1,
	}
	raw, err := gatdist.Train(base)
	if err != nil {
		return fmt.Errorf("gat experiment (raw): %w", err)
	}
	add("GAT", "raw", raw)

	ecCfg := base
	ecCfg.FPScheme = worker.SchemeEC
	ecCfg.FPBits = 4
	ecCfg.Ttr = 10
	ecCfg.DPScheme = worker.SchemeEC
	ecCfg.DPBits = 4
	ecRes, err := gatdist.Train(ecCfg)
	if err != nil {
		return fmt.Errorf("gat experiment (ec): %w", err)
	}
	add("GAT", "EC 4-bit", ecRes)

	table.Render(opt.Out)
	fmt.Fprintf(opt.Out, "EC cuts GAT traffic %.1fx at matched accuracy (Δacc %+.4f)\n\n",
		raw.AvgEpochBytes()/ecRes.AvgEpochBytes(), ecRes.TestAccuracy-raw.TestAccuracy)
	return nil
}
