package experiments

import (
	"fmt"

	"ecgraph/internal/core"
	"ecgraph/internal/metrics"
	"ecgraph/internal/worker"
)

func init() {
	register("fig8", "ablation: convergence-time speedup and accuracy of each compression/compensation arm", runFig8)
}

// fig8Bits is the per-dataset bit configuration of §V-C
// (Cp-fp / Cp-bp / ReqEC / ResEC). One deviation from the paper's values:
// ResEC on ogbn-products uses 4 bits instead of 2 — on the synthetic preset
// (8% training vertices, so extremely sparse output-layer gradients) 2-bit
// error feedback delays gradients too long to converge, and the paper's own
// §V-C methodology is to pick the bits at which the model converges. For
// the same reason ogbn-papers (32 classes, heavy label noise) uses 8-bit
// ResEC instead of 4.
var fig8Bits = map[string][4]int{
	"cora":          {2, 4, 1, 2},
	"pubmed":        {4, 4, 2, 2},
	"reddit":        {8, 8, 2, 4},
	"ogbn-products": {16, 8, 2, 4},
	"ogbn-papers":   {8, 8, 4, 8},
}

// runFig8 reproduces Fig. 8: for each dataset, the convergence-time speedup
// over Non-cp (histogram) and the final test accuracy (line) of the
// compression-only and error-compensated arms, plus the adaptive Bit-Tuner.
func runFig8(opt Options) error {
	dsets := []string{"cora", "pubmed", "reddit", "ogbn-products"}
	if opt.Quick {
		dsets = []string{"cora"}
	}
	for _, ds := range dsets {
		bits := fig8Bits[ds]
		layers := defaultLayers[ds]
		table := metrics.NewTable(
			fmt.Sprintf("Fig. 8 — %s ablation (speedup over Non-cp, test accuracy)", ds),
			"arm", "bits", "conv epochs", "conv time", "speedup", "test acc")

		type arm struct {
			label string
			bits  int
			opts  worker.Options
		}
		arms := []arm{
			{"Non-cp", 0, worker.Options{}},
			{"Cp-fp", bits[0], worker.Options{FPScheme: worker.SchemeCompress, FPBits: bits[0]}},
			{"Cp-bp", bits[1], worker.Options{BPScheme: worker.SchemeCompress, BPBits: bits[1]}},
			{"ReqEC", bits[2], worker.Options{FPScheme: worker.SchemeEC, FPBits: bits[2], Ttr: 10}},
			{"ResEC", bits[3], worker.Options{BPScheme: worker.SchemeEC, BPBits: bits[3]}},
			{"ReqEC-adapt", bits[2], worker.Options{FPScheme: worker.SchemeEC, FPBits: bits[2], Ttr: 10, AdaptiveBits: true}},
		}
		// Convergence is measured against a single target shared by every
		// arm — 99.5% of the uncompressed run's best validation accuracy —
		// matching the paper's "converge to the near-optimal test accuracy"
		// criterion and avoiding per-arm detector noise.
		var base, target float64
		for _, a := range arms {
			res, err := core.Train(engineConfig(ds, layers, a.opts, opt.Quick))
			if err != nil {
				return fmt.Errorf("fig8 %s %s: %w", ds, a.label, err)
			}
			if a.label == "Non-cp" {
				target = 0.995 * res.BestVal
			}
			convEpoch, conv := convergenceToTarget(res, target)
			if a.label == "Non-cp" {
				base = conv
			}
			table.AddRow(
				a.label,
				a.bits,
				convEpoch,
				metrics.Seconds(conv),
				metrics.Ratio(metrics.Speedup(base, conv)),
				metrics.Fixed(res.TestAccuracy, 4),
			)
		}
		table.Render(opt.Out)
	}
	return nil
}

// convergenceToTarget returns the first epoch whose validation accuracy
// reaches target and the cumulative simulated time through it; an arm that
// never reaches the target is charged its full run.
func convergenceToTarget(res *core.Result, target float64) (int, float64) {
	var cum float64
	for t, e := range res.Epochs {
		cum += e.SimSeconds
		if e.ValAcc >= target {
			return t, cum
		}
	}
	return -1, cum
}
