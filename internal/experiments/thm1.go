package experiments

import (
	"fmt"
	"math"

	"ecgraph/internal/compress"
	"ecgraph/internal/ec"
	"ecgraph/internal/graph"
	"ecgraph/internal/metrics"
	"ecgraph/internal/nn"
	"ecgraph/internal/tensor"
)

func init() {
	register("thm1", "Theorem 1: ResEC-BP residual norm vs the analytic bound on real training gradients", runThm1)
}

// runThm1 traces the ResEC-BP residual through an actual training run: a
// 2-layer GCN trains on cora while the layer-2 embedding gradients (the
// matrices BP exchanges) stream through a BackwardResponder. Each epoch
// reports ‖δ_t‖² next to the Theorem 1 bound
// (1+α)^{L−l}·G² / (1−α²(1+1/ρ)) built from the measured contraction
// factor α and gradient-norm bound G.
func runThm1(opt Options) error {
	d := load("cora")
	bits := 4
	epochs := epochsFor("cora", opt.Quick)
	const L, l = 2, 2 // the exchanged gradient is G^2 of a 2-layer GCN

	adj := graph.Normalize(d.Graph)
	model := nn.NewModel(nn.KindGCN, []int{d.NumFeatures(), 16, d.NumClasses}, 1)
	flat := model.FlattenParams()
	optAdam := nn.NewAdam(0.01, len(flat))
	resp := ec.NewBackwardResponder()

	var alpha, gBound, worstResidual float64
	table := metrics.NewTable(
		fmt.Sprintf("Theorem 1 trace — cora, ResEC-BP at %d bits (α and G measured so far)", bits),
		"epoch", "‖G‖", "‖δ‖²", "bound", "ok")
	violated := false
	for t := 0; t < epochs; t++ {
		acts := model.Forward(adj, d.Features)
		logits := acts.H[len(acts.H)-1]
		_, gradOut := nn.SoftmaxCrossEntropy(logits, d.Labels, d.TrainMask)
		grads := model.Backward(adj, acts, gradOut)

		// gradOut is G^L — the gradient matrix ResEC-BP compresses.
		g := gradOut
		if n := g.FrobeniusNorm(); n > gBound {
			gBound = n
		}
		alpha = math.Max(alpha, measuredAlpha(resp, g, bits))
		resp.Respond(g, bits)
		r2 := resp.ResidualNorm() * resp.ResidualNorm()
		if r2 > worstResidual {
			worstResidual = r2
		}

		bound, ok := thm1Bound(alpha, gBound, L, l, r2)
		if !ok {
			violated = true
		}
		if t%5 == 0 || t == epochs-1 {
			table.AddRowStrings(
				fmt.Sprintf("%d", t),
				fmt.Sprintf("%.4g", gBound),
				fmt.Sprintf("%.4g", r2),
				fmt.Sprintf("%.4g", bound),
				fmt.Sprintf("%v", ok))
		}

		optAdam.Step(flat, grads.Flatten())
		model.SetFlatParams(flat)
	}
	table.Render(opt.Out)
	if violated {
		return fmt.Errorf("thm1: residual exceeded the Theorem 1 bound")
	}
	fmt.Fprintf(opt.Out, "measured α = %.4f (< √2/2 = %.4f required), worst ‖δ‖² = %.4g\n\n",
		alpha, math.Sqrt2/2, worstResidual)
	return nil
}

// measuredAlpha returns this step's contraction factor of the quantiser on
// the compensated input.
func measuredAlpha(resp *ec.BackwardResponder, g *tensor.Matrix, bits int) float64 {
	// Mirror what Respond will compress: g + δ.
	cpt := g
	if r := resp.Residual(); r != nil {
		cpt = g.Add(r)
	}
	n := cpt.FrobeniusNorm()
	if n == 0 {
		return 0
	}
	q := compress.CompressZeroCentered(cpt, bits)
	return q.Decompress().Sub(cpt).FrobeniusNorm() / n
}

// thm1Bound evaluates the Theorem 1 bound for the measured α and G and
// reports whether r2 respects it. α ≥ √2/2 voids the precondition; the
// bound is then reported as +Inf (trivially satisfied) so the trace keeps
// going.
func thm1Bound(alpha, g float64, L, l int, r2 float64) (float64, bool) {
	if alpha >= math.Sqrt2/2 || alpha == 0 {
		return math.Inf(1), true
	}
	rho := 1/(alpha*alpha) - 1
	if rho > 100 {
		rho = 100
	}
	bound := math.Pow(1+alpha, float64(L-l)) * g * g / (1 - alpha*alpha*(1+1/rho))
	return bound, r2 <= bound
}
