// Package experiments regenerates every table and figure of the paper's
// evaluation (§V) on the reproduction substrate. Each experiment is
// registered by its paper id (fig6, fig7, fig8, table2, table4, table5,
// fig9, fig10, fig11) and writes its textual tables/series to the provided
// writer; two extras go beyond the paper's figures (thm1 traces the
// Theorem 1 bound on live gradients, gat runs the §III-B model-generality
// claim). cmd/ecgraph-bench is the CLI front end; bench_test.go wraps the
// quick variants as testing.B benchmarks.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"ecgraph/internal/core"
	"ecgraph/internal/datasets"
	"ecgraph/internal/nn"
	"ecgraph/internal/obs"
	"ecgraph/internal/worker"
)

// Options controls an experiment run.
type Options struct {
	// Quick shrinks datasets, epochs and arms for CI and testing.B use.
	Quick bool
	Out   io.Writer
	// Metrics, when non-nil, is threaded into every engine run the
	// experiment performs, so a long bench session can be watched live on
	// /metrics and profiled via /debug/pprof.
	Metrics *obs.Registry
}

// activeMetrics is the registry of the experiment run in flight; the many
// call sites build engine configs through engineConfig, which injects it.
// Experiments run one at a time per Run call, and concurrent Run calls
// share at worst each other's registry, which is benign (obs handles are
// concurrency-safe), so a package var beats threading the option through
// every figure's helper chain.
var activeMetrics *obs.Registry

type runner struct {
	describe string
	run      func(Options) error
}

var registry = map[string]runner{}

func register(name, describe string, run func(Options) error) {
	registry[name] = runner{describe: describe, run: run}
}

// Names returns the registered experiment ids in evaluation order.
func Names() []string {
	order := []string{"fig6", "fig7", "fig8", "table2", "table4", "table5", "fig9", "fig10", "fig11", "thm1", "gat"}
	out := make([]string, 0, len(order))
	for _, n := range order {
		if _, ok := registry[n]; ok {
			out = append(out, n)
		}
	}
	// Append any extras deterministically.
	var extra []string
	for n := range registry {
		found := false
		for _, o := range order {
			if o == n {
				found = true
			}
		}
		if !found {
			extra = append(extra, n)
		}
	}
	sort.Strings(extra)
	return append(out, extra...)
}

// Describe returns the one-line description of an experiment id.
func Describe(name string) string { return registry[name].describe }

// Run executes the named experiment.
func Run(name string, opt Options) error {
	r, ok := registry[name]
	if !ok {
		return fmt.Errorf("experiments: unknown experiment %q (have %v)", name, Names())
	}
	if opt.Out == nil {
		return fmt.Errorf("experiments: Options.Out is required")
	}
	activeMetrics = opt.Metrics
	defer func() { activeMetrics = nil }()
	return r.run(opt)
}

// ---- Shared configuration mirroring §V-A ----

var (
	dsMu    sync.Mutex
	dsCache = map[string]*datasets.Dataset{}
)

// load returns the cached preset dataset (generation is deterministic).
func load(name string) *datasets.Dataset {
	dsMu.Lock()
	defer dsMu.Unlock()
	if d, ok := dsCache[name]; ok {
		return d
	}
	d := datasets.MustLoad(name)
	dsCache[name] = d
	return d
}

// defaultLayers is the paper's per-dataset layer count (§V-A: 2,2,2,3,3).
var defaultLayers = map[string]int{
	"cora": 2, "pubmed": 2, "reddit": 2, "ogbn-products": 3, "ogbn-papers": 3,
}

// hiddenDim returns the hidden width. The paper uses 16 for the citation
// graphs and 256 for the OGBN graphs; the reproduction scales the latter to
// 64 to stay laptop-sized (EXPERIMENTS.md documents the scaling).
func hiddenDim(dataset string, quick bool) int {
	if quick {
		return 16
	}
	switch dataset {
	case "ogbn-products", "ogbn-papers":
		return 64
	default:
		return 16
	}
}

// hiddenFor builds the hidden-layer slice for an L-layer GNN.
func hiddenFor(dataset string, layers int, quick bool) []int {
	h := make([]int, layers-1)
	for i := range h {
		h[i] = hiddenDim(dataset, quick)
	}
	return h
}

// fanouts is Table IV's per-dataset sampling ratios, indexed by layer
// count. nil means the paper trained that dataset full-batch at that depth.
var fanouts = map[string]map[int][]int{
	"cora":          {2: nil, 3: {20, 10, 5}, 4: {10, 5, 5, 5}},
	"pubmed":        {2: nil, 3: {10, 10, 5}, 4: {5, 5, 5, 1}},
	"reddit":        {2: {10, 5}, 3: {5, 2, 2}, 4: {5, 5, 1, 1}},
	"ogbn-products": {2: {20, 5}, 3: {10, 5, 1}, 4: {10, 5, 2, 2}},
	"ogbn-papers":   {2: {10, 10}, 3: {10, 10, 10}, 4: {10, 10, 10, 10}},
}

// clusterWorkers is the paper's test cluster size (§V-A: six machines
// except for scalability).
func clusterWorkers(quick bool) int {
	if quick {
		return 3
	}
	return 6
}

func epochsFor(dataset string, quick bool) int {
	if quick {
		return 15
	}
	switch dataset {
	case "cora", "pubmed":
		return 60
	case "reddit":
		return 40
	case "ogbn-products":
		return 40
	default: // ogbn-papers
		return 30
	}
}

// engineConfig builds a core.Config for one dataset with the given worker
// options.
func engineConfig(dataset string, layers int, opts worker.Options, quick bool) core.Config {
	d := load(dataset)
	return core.Config{
		Dataset: d,
		Kind:    nn.KindGCN,
		Hidden:  hiddenFor(dataset, layers, quick),
		Workers: clusterWorkers(quick),
		Servers: 2,
		Epochs:  epochsFor(dataset, quick),
		LR:      0.01,
		Seed:    1,
		Worker:  opts,
		Metrics: activeMetrics,
	}
}

// testCurve extracts the test-accuracy series from a result.
func testCurve(res *core.Result) []float64 {
	out := make([]float64, len(res.Epochs))
	for i, e := range res.Epochs {
		out[i] = e.TestAcc
	}
	return out
}
