// Package cliconf is the shared flag/config surface of the EC-Graph CLIs.
// ecgraph-train, ecgraph-tcpdemo, ecgraph-serve and ecgraph-infer register
// the flags they have in common through one builder — same names, same
// help text, same validation — so the binaries cannot drift apart, and a
// main() shrinks to parse → Build → run.
//
// Flags are grouped (dataset selection, cluster shape, supervision,
// parameter-server tier, telemetry); each CLI opts into the groups it
// supports and keeps its genuinely private flags local.
package cliconf

import (
	"flag"
	"fmt"
	"net/http"
	"strings"
	"time"

	"ecgraph/internal/datasets"
	"ecgraph/internal/obs"
	"ecgraph/internal/supervise"
)

// Groups selects which shared flag groups Register installs.
type Groups uint

const (
	// Data registers -dataset (preset selection).
	Data Groups = 1 << iota
	// Files registers -edges/-vertices (custom graph files, an
	// alternative to -dataset where the CLI supports it).
	Files
	// Cluster registers -workers, -servers, -epochs, -net-concurrency
	// and -overlap.
	Cluster
	// Supervision registers -supervise, -heartbeat, -suspect-after,
	// -dead-after and -auto-rollback.
	Supervision
	// PS registers -ps-replicas and -ps-failover.
	PS
	// Obs registers -metrics-addr and -events-out.
	Obs

	// All is every shared group.
	All = Data | Files | Cluster | Supervision | PS | Obs
)

// Defaults carries the per-CLI defaults for shared flags (the demo wants a
// smaller cluster than the trainer; the server wants its endpoint on by
// default).
type Defaults struct {
	Dataset     string
	Workers     int
	Servers     int
	Epochs      int
	MetricsAddr string
}

// Common holds the parsed values of the shared flags. Fields of groups the
// CLI did not register keep their zero values.
type Common struct {
	groups Groups

	Dataset  string
	Edges    string
	Vertices string

	Workers     int
	Servers     int
	Epochs      int
	Concurrency int
	Overlap     bool
	PackedSpMM  bool

	Supervise    bool
	Heartbeat    time.Duration
	SuspectAfter time.Duration
	DeadAfter    time.Duration
	AutoRollback bool

	PSReplicas int
	PSFailover bool

	MetricsAddr string
	EventsOut   string
}

// Register installs the selected shared flag groups on fs with the given
// defaults and returns the value holder, populated once fs is parsed.
func Register(fs *flag.FlagSet, d Defaults, groups Groups) *Common {
	c := &Common{groups: groups}
	if groups&Data != 0 {
		fs.StringVar(&c.Dataset, "dataset", d.Dataset,
			"dataset preset: "+strings.Join(datasets.PresetNames(), ", "))
	}
	if groups&Files != 0 {
		fs.StringVar(&c.Edges, "edges", "", "edge-list file (with -vertices, instead of -dataset)")
		fs.StringVar(&c.Vertices, "vertices", "", "vertex file: label + features per line")
	}
	if groups&Cluster != 0 {
		fs.IntVar(&c.Workers, "workers", d.Workers, "number of workers")
		fs.IntVar(&c.Servers, "servers", d.Servers, "number of parameter servers")
		fs.IntVar(&c.Epochs, "epochs", d.Epochs, "training epochs")
		fs.IntVar(&c.Concurrency, "net-concurrency", 4,
			"max in-flight ghost-exchange calls per worker (1 = sequential)")
		fs.BoolVar(&c.Overlap, "overlap", true,
			"overlap ghost communication with local computation in the epoch loop (false = sequential oracle)")
		fs.BoolVar(&c.PackedSpMM, "packed-spmm", true,
			"aggregate quantised ghost payloads in their packed wire form (false = decode-first oracle, bitwise identical)")
	}
	if groups&Supervision != 0 {
		fs.BoolVar(&c.Supervise, "supervise", false,
			"enable heartbeat failure detection, automatic worker recovery and straggler tolerance")
		fs.DurationVar(&c.Heartbeat, "heartbeat", 25*time.Millisecond,
			"heartbeat interval between workers and the monitor (with -supervise)")
		fs.DurationVar(&c.SuspectAfter, "suspect-after", 0,
			"heartbeat silence before a worker is suspect (default 5x -heartbeat)")
		fs.DurationVar(&c.DeadAfter, "dead-after", 0,
			"heartbeat silence before a worker is declared dead (default 15x -heartbeat)")
		fs.BoolVar(&c.AutoRollback, "auto-rollback", false,
			"roll back to the latest checkpoint and replay when recovery fails or a numeric guard trips (implies -supervise)")
	}
	if groups&PS != 0 {
		fs.IntVar(&c.PSReplicas, "ps-replicas", 0,
			"hot-standby replicas per parameter-server range (0 or 1); each backup gets its own node")
		fs.BoolVar(&c.PSFailover, "ps-failover", false,
			"promote a range's backup when its primary dies, re-electing the monitor if needed (requires -supervise and -ps-replicas 1)")
	}
	if groups&Obs != 0 {
		fs.StringVar(&c.MetricsAddr, "metrics-addr", d.MetricsAddr,
			"serve Prometheus /metrics and /debug/pprof on this address (e.g. :9090 or :0; host defaults to 127.0.0.1)")
		fs.StringVar(&c.EventsOut, "events-out", "",
			"append one JSONL epoch event per worker per epoch to this file")
	}
	return c
}

// Validate applies the cross-flag constraints of the registered groups —
// the checks ecgraph-train and ecgraph-tcpdemo used to duplicate.
func (c *Common) Validate() error {
	if c.groups&PS != 0 {
		if c.PSReplicas < 0 || c.PSReplicas > 1 {
			return fmt.Errorf("-ps-replicas must be 0 or 1")
		}
		if c.PSFailover && !c.Supervise && !c.AutoRollback {
			return fmt.Errorf("-ps-failover requires -supervise (PS death detection lives in the supervisor)")
		}
		if c.PSFailover && c.PSReplicas < 1 {
			return fmt.Errorf("-ps-failover requires -ps-replicas 1 (promotion needs a backup)")
		}
	}
	return nil
}

// LoadDataset loads the selected dataset: the preset, or the custom files
// when the Files group is registered and both paths were given.
func (c *Common) LoadDataset() (*datasets.Dataset, error) {
	switch {
	case c.Edges != "" && c.Vertices != "":
		return datasets.LoadFiles("custom", c.Edges, c.Vertices, 0, 0)
	case c.Edges != "" || c.Vertices != "":
		return nil, fmt.Errorf("-edges and -vertices must be given together")
	case c.Dataset != "":
		return datasets.Load(c.Dataset)
	case c.groups&Files != 0:
		return nil, fmt.Errorf("need -dataset or both -edges and -vertices")
	default:
		return nil, fmt.Errorf("need -dataset")
	}
}

// SuperviseOptions builds the supervision options, nil when supervision is
// off (-auto-rollback implies it, matching the engine's contract).
func (c *Common) SuperviseOptions() *supervise.Options {
	if !c.Supervise && !c.AutoRollback {
		return nil
	}
	return &supervise.Options{
		HeartbeatInterval: c.Heartbeat,
		SuspectAfter:      c.SuspectAfter,
		DeadAfter:         c.DeadAfter,
		AutoRollback:      c.AutoRollback,
	}
}

// Telemetry is the running observability surface a CLI builds from its
// shared flags: the registry feeding every subsystem's instruments, the
// HTTP server exposing them, and the epoch event log.
type Telemetry struct {
	Registry *obs.Registry // nil when -metrics-addr is unset
	Server   *obs.Server   // nil when -metrics-addr is unset
	Events   *obs.EventLog // nil when -events-out is unset
}

// Close releases the telemetry resources (safe on nil members).
func (t *Telemetry) Close() {
	if t == nil {
		return
	}
	if t.Server != nil {
		_ = t.Server.Close()
	}
	if t.Events != nil {
		_ = t.Events.Close()
	}
}

// StartTelemetry starts the metrics endpoint and event log per the parsed
// flags. mount, when non-nil, adds application routes (the serving front
// door) to the metrics server's mux before it starts listening.
func (c *Common) StartTelemetry(mount func(*http.ServeMux)) (*Telemetry, error) {
	return c.StartTelemetryWith(nil, mount)
}

// StartTelemetryWith is StartTelemetry with a caller-built registry, for a
// CLI that must wire its instruments (and the routes that expose them)
// before the listener starts accepting — ecgraph-serve builds the service
// against the registry first, then mounts it here. A nil reg builds one.
func (c *Common) StartTelemetryWith(reg *obs.Registry, mount func(*http.ServeMux)) (*Telemetry, error) {
	t := &Telemetry{}
	if c.MetricsAddr != "" {
		t.Registry = reg
		if t.Registry == nil {
			t.Registry = obs.NewRegistry()
		}
		srv, err := obs.ServeWith(c.MetricsAddr, t.Registry, mount)
		if err != nil {
			return nil, err
		}
		t.Server = srv
		fmt.Printf("metrics and pprof on http://%s\n", srv.Addr())
	}
	if c.EventsOut != "" {
		events, err := obs.OpenEventLog(c.EventsOut)
		if err != nil {
			t.Close()
			return nil, err
		}
		t.Events = events
	}
	return t, nil
}

// Built is the assembled runtime configuration a main() consumes.
type Built struct {
	Dataset *datasets.Dataset
	*Telemetry
}

// Build validates the shared flags, loads the dataset and starts the
// telemetry — the common prologue of every EC-Graph CLI.
func (c *Common) Build(mount func(*http.ServeMux)) (*Built, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	d, err := c.LoadDataset()
	if err != nil {
		return nil, err
	}
	t, err := c.StartTelemetry(mount)
	if err != nil {
		return nil, err
	}
	return &Built{Dataset: d, Telemetry: t}, nil
}
