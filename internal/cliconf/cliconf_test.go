package cliconf

import (
	"flag"
	"net/http"
	"strings"
	"testing"
	"time"
)

func newFS(t *testing.T) *flag.FlagSet {
	t.Helper()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	return fs
}

func TestRegisterGroupsAreSelective(t *testing.T) {
	fs := newFS(t)
	Register(fs, Defaults{Dataset: "cora", Workers: 4, Servers: 2, Epochs: 60}, Data|Cluster)
	if fs.Lookup("dataset") == nil || fs.Lookup("workers") == nil {
		t.Fatal("registered groups must install their flags")
	}
	for _, name := range []string{"edges", "supervise", "ps-replicas", "metrics-addr"} {
		if fs.Lookup(name) != nil {
			t.Fatalf("unselected group's flag %q must not be registered", name)
		}
	}
}

func TestDefaultsFlowThrough(t *testing.T) {
	fs := newFS(t)
	c := Register(fs, Defaults{Dataset: "cora", Workers: 3, Servers: 1, Epochs: 20}, All)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if c.Dataset != "cora" || c.Workers != 3 || c.Servers != 1 || c.Epochs != 20 {
		t.Fatalf("defaults did not flow through: %+v", c)
	}
	if c.Concurrency != 4 || !c.Overlap || c.Heartbeat != 25*time.Millisecond {
		t.Fatalf("fixed defaults wrong: %+v", c)
	}
}

func TestParseOverrides(t *testing.T) {
	fs := newFS(t)
	c := Register(fs, Defaults{Dataset: "cora", Workers: 4, Servers: 2, Epochs: 60}, All)
	args := []string{
		"-dataset", "citeseer", "-workers", "8", "-supervise",
		"-ps-replicas", "1", "-ps-failover", "-metrics-addr", ":0",
	}
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	if c.Dataset != "citeseer" || c.Workers != 8 || !c.Supervise || c.PSReplicas != 1 || !c.PSFailover {
		t.Fatalf("overrides did not parse: %+v", c)
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("valid combination rejected: %v", err)
	}
}

func TestValidateRejectsBadPSCombos(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"replicas-out-of-range", []string{"-ps-replicas", "2"}, "-ps-replicas"},
		{"failover-without-supervise", []string{"-ps-replicas", "1", "-ps-failover"}, "-supervise"},
		{"failover-without-replica", []string{"-supervise", "-ps-failover"}, "-ps-replicas 1"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fs := newFS(t)
			c := Register(fs, Defaults{Dataset: "cora"}, All)
			if err := fs.Parse(tc.args); err != nil {
				t.Fatal(err)
			}
			err := c.Validate()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Validate() = %v, want error mentioning %q", err, tc.want)
			}
		})
	}
}

func TestLoadDatasetPresetAndErrors(t *testing.T) {
	fs := newFS(t)
	c := Register(fs, Defaults{Dataset: "cora"}, Data|Files)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	d, err := c.LoadDataset()
	if err != nil {
		t.Fatal(err)
	}
	if d.Name != "cora" || d.Graph.N == 0 {
		t.Fatalf("preset load wrong: %q with %d vertices", d.Name, d.Graph.N)
	}

	fs = newFS(t)
	c = Register(fs, Defaults{}, Data|Files)
	if err := fs.Parse([]string{"-edges", "only-one.txt"}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.LoadDataset(); err == nil || !strings.Contains(err.Error(), "together") {
		t.Fatalf("half a custom pair must be rejected, got %v", err)
	}

	fs = newFS(t)
	c = Register(fs, Defaults{}, Data|Files)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if _, err := c.LoadDataset(); err == nil {
		t.Fatal("no dataset selection must error")
	}
}

func TestSuperviseOptions(t *testing.T) {
	fs := newFS(t)
	c := Register(fs, Defaults{Dataset: "cora"}, All)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if c.SuperviseOptions() != nil {
		t.Fatal("no -supervise/-auto-rollback must yield nil options")
	}

	fs = newFS(t)
	c = Register(fs, Defaults{Dataset: "cora"}, All)
	if err := fs.Parse([]string{"-auto-rollback", "-heartbeat", "10ms"}); err != nil {
		t.Fatal(err)
	}
	opts := c.SuperviseOptions()
	if opts == nil || !opts.AutoRollback || opts.HeartbeatInterval != 10*time.Millisecond {
		t.Fatalf("auto-rollback must imply supervision: %+v", opts)
	}
}

func TestBuildStartsTelemetryAndMounts(t *testing.T) {
	fs := newFS(t)
	c := Register(fs, Defaults{Dataset: "cora"}, Data|Obs)
	if err := fs.Parse([]string{"-metrics-addr", ":0"}); err != nil {
		t.Fatal(err)
	}
	mounted := false
	b, err := c.Build(func(mux *http.ServeMux) {
		mounted = true
		mux.HandleFunc("/v1/ping", func(w http.ResponseWriter, _ *http.Request) {
			w.WriteHeader(http.StatusNoContent)
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if b.Dataset == nil || b.Registry == nil || b.Server == nil {
		t.Fatalf("Build must load the dataset and start telemetry: %+v", b)
	}
	if !mounted {
		t.Fatal("Build must invoke the mount hook")
	}
	resp, err := http.Get("http://" + b.Server.Addr() + "/v1/ping")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("mounted route returned %d", resp.StatusCode)
	}
	resp, err = http.Get("http://" + b.Server.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics returned %d", resp.StatusCode)
	}
}

func TestGracefulRunsClosersOnceLIFO(t *testing.T) {
	g := NewGraceful("test")
	var order []int
	g.Defer(func() { order = append(order, 1) })
	g.Defer(func() { order = append(order, 2) })
	g.Shutdown()
	g.Shutdown()
	if len(order) != 2 || order[0] != 2 || order[1] != 1 {
		t.Fatalf("closers must run once, LIFO: %v", order)
	}
}
