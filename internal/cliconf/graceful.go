package cliconf

import (
	"fmt"
	"os"
	"os/signal"
	"sync"
	"syscall"
)

// Graceful runs registered closers exactly once — on SIGINT/SIGTERM or on
// the normal exit path, whichever comes first — so a long-running CLI
// (ecgraph-serve, ecgraph-train -metrics-addr, ecgraph-tcpdemo) drains its
// queues, flushes its event log and closes its HTTP listener instead of
// dying mid-write. A second signal skips the drain and exits immediately.
type Graceful struct {
	name string

	mu      sync.Mutex
	closers []func()
	once    sync.Once
}

// NewGraceful returns a helper that prefixes its log lines with name.
func NewGraceful(name string) *Graceful {
	return &Graceful{name: name}
}

// Defer registers fn to run at shutdown. Closers run in reverse
// registration order, like defers.
func (g *Graceful) Defer(fn func()) {
	g.mu.Lock()
	g.closers = append(g.closers, fn)
	g.mu.Unlock()
}

// run executes the closers once, LIFO.
func (g *Graceful) run() {
	g.once.Do(func() {
		g.mu.Lock()
		closers := g.closers
		g.closers = nil
		g.mu.Unlock()
		for i := len(closers) - 1; i >= 0; i-- {
			closers[i]()
		}
	})
}

// Arm starts watching SIGINT and SIGTERM. The first signal announces
// itself, runs the closers and exits with exitCode; a second signal while
// the drain is still running force-exits with code 1.
func (g *Graceful) Arm(exitCode int) {
	ch := make(chan os.Signal, 2)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	go func() {
		sig := <-ch
		fmt.Printf("%s: received %s, draining\n", g.name, sig)
		go func() {
			<-ch
			fmt.Fprintf(os.Stderr, "%s: second signal, exiting now\n", g.name)
			os.Exit(1)
		}()
		g.run()
		fmt.Printf("%s: drained, exiting\n", g.name)
		os.Exit(exitCode)
	}()
}

// Shutdown runs the closers on the normal (signal-free) exit path. Safe to
// call from a defer alongside an armed signal handler: whoever gets there
// first wins.
func (g *Graceful) Shutdown() {
	g.run()
}
