// Package supervise is EC-Graph's self-healing layer: workers emit
// heartbeats over the same transport the training traffic uses, a
// phi-accrual-style failure detector classifies each worker as healthy,
// suspect or dead, and a Supervisor drives the engine's recovery — dead
// workers are respawned and rehydrated (parameters from the parameter
// servers, ghost stores refetched from peers, error-compensation state
// deliberately reset followed by a forced exact-sync round), stragglers
// are tolerated by serving degraded ghost rows under per-peer deadlines
// derived from an EWMA of response times, and numeric corruption rolls
// the run back to the latest checkpoint instead of erroring out.
//
// The package sits below internal/worker and internal/core: it only knows
// about transport.Network, so the same supervision stack runs over the
// in-process harness, the chaos-injected test fabric and real TCP.
package supervise

import (
	"math"
	"sync"
	"time"
)

// Status is the failure detector's verdict on one worker.
type Status int

const (
	// StatusHealthy means heartbeats are arriving on schedule.
	StatusHealthy Status = iota
	// StatusSuspect means heartbeats are overdue: peers should stop
	// blocking on this worker and serve degraded ghost rows instead, but
	// the worker is not yet written off.
	StatusSuspect
	// StatusDead means the worker has missed heartbeats long enough that
	// the supervisor must respawn and rehydrate it.
	StatusDead
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case StatusHealthy:
		return "healthy"
	case StatusSuspect:
		return "suspect"
	case StatusDead:
		return "dead"
	default:
		return "unknown"
	}
}

// DetectorConfig tunes the failure detector. The zero value derives
// everything from the heartbeat interval.
type DetectorConfig struct {
	// HeartbeatInterval is the expected gap between heartbeats; it seeds
	// the inter-arrival estimate before enough samples exist.
	HeartbeatInterval time.Duration
	// SuspectAfter and DeadAfter are hard elapsed-time bounds: a worker
	// whose last heartbeat is older than SuspectAfter is at least suspect,
	// older than DeadAfter is dead, regardless of phi. Zero derives them
	// from the heartbeat interval (5x and 15x).
	SuspectAfter time.Duration
	DeadAfter    time.Duration
	// PhiSuspect and PhiDead are the accrual thresholds: phi is the
	// negated decimal log of the probability that a heartbeat this overdue
	// is still in flight, under a normal model of the observed
	// inter-arrival times. Defaults 2 (99% confidence) and 8.
	PhiSuspect float64
	PhiDead    float64
	// WindowSize bounds the inter-arrival sample window (default 64).
	WindowSize int
	// Now overrides the clock for tests.
	Now func() time.Time
}

func (c DetectorConfig) withDefaults() DetectorConfig {
	if c.HeartbeatInterval <= 0 {
		c.HeartbeatInterval = 25 * time.Millisecond
	}
	if c.SuspectAfter <= 0 {
		c.SuspectAfter = 5 * c.HeartbeatInterval
	}
	if c.DeadAfter <= 0 {
		c.DeadAfter = 15 * c.HeartbeatInterval
	}
	if c.PhiSuspect <= 0 {
		c.PhiSuspect = 2
	}
	if c.PhiDead <= 0 {
		c.PhiDead = 8
	}
	if c.WindowSize <= 0 {
		c.WindowSize = 64
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// peerState accumulates one worker's heartbeat history.
type peerState struct {
	last      time.Time
	intervals []float64 // seconds, ring buffer
	next      int
	filled    bool
}

// Detector is a phi-accrual-style failure detector over worker heartbeats
// (Hayashibara et al.: suspicion is a continuous accrual value, not a
// binary timeout). Safe for concurrent use: heartbeats arrive on transport
// handler goroutines while the engine polls statuses.
type Detector struct {
	cfg DetectorConfig

	mu    sync.Mutex
	peers map[int]*peerState
}

// NewDetector builds a detector; Register each monitored worker before
// training starts so silence is measured from a known epoch.
func NewDetector(cfg DetectorConfig) *Detector {
	return &Detector{cfg: cfg.withDefaults(), peers: make(map[int]*peerState)}
}

// Register starts monitoring a worker, treating now as its first
// heartbeat so a worker that dies before ever beating is still detected.
func (d *Detector) Register(worker int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.peers[worker] = &peerState{
		last:      d.cfg.Now(),
		intervals: make([]float64, d.cfg.WindowSize),
	}
}

// Beat records a heartbeat arrival from the worker.
func (d *Detector) Beat(worker int) {
	now := d.cfg.Now()
	d.mu.Lock()
	defer d.mu.Unlock()
	p, ok := d.peers[worker]
	if !ok {
		p = &peerState{last: now, intervals: make([]float64, d.cfg.WindowSize)}
		d.peers[worker] = p
		return
	}
	iv := now.Sub(p.last).Seconds()
	p.last = now
	p.intervals[p.next] = iv
	p.next++
	if p.next == len(p.intervals) {
		p.next = 0
		p.filled = true
	}
}

// meanStd returns the mean and standard deviation of the sample window,
// seeding with the configured interval while samples are scarce.
func (d *Detector) meanStd(p *peerState) (mean, std float64) {
	n := p.next
	if p.filled {
		n = len(p.intervals)
	}
	base := d.cfg.HeartbeatInterval.Seconds()
	if n < 4 {
		return base, base / 4
	}
	var sum float64
	for i := 0; i < n; i++ {
		sum += p.intervals[i]
	}
	mean = sum / float64(n)
	var sq float64
	for i := 0; i < n; i++ {
		dev := p.intervals[i] - mean
		sq += dev * dev
	}
	std = math.Sqrt(sq / float64(n))
	// Floor the deviation so a perfectly regular in-process clock does not
	// make phi explode on the first scheduling hiccup.
	if floor := mean / 10; std < floor {
		std = floor
	}
	if floor := base / 20; std < floor {
		std = floor
	}
	return mean, std
}

// Phi returns the current suspicion level for the worker:
// phi = -log10 P(a heartbeat gap > elapsed), with the gap modelled as
// normal over the observed inter-arrival window. Unknown workers are
// maximally suspicious.
func (d *Detector) Phi(worker int) float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	p, ok := d.peers[worker]
	if !ok {
		return math.Inf(1)
	}
	return d.phiLocked(p)
}

func (d *Detector) phiLocked(p *peerState) float64 {
	elapsed := d.cfg.Now().Sub(p.last).Seconds()
	mean, std := d.meanStd(p)
	// P(X > elapsed) for X ~ N(mean, std): 0.5 * erfc((elapsed-mean)/(std*sqrt2)).
	pLater := 0.5 * math.Erfc((elapsed-mean)/(std*math.Sqrt2))
	if pLater <= 0 {
		return math.Inf(1)
	}
	return -math.Log10(pLater)
}

// Status classifies the worker from its phi value and the hard
// elapsed-time bounds (healthy → suspect → dead).
func (d *Detector) Status(worker int) Status {
	d.mu.Lock()
	defer d.mu.Unlock()
	p, ok := d.peers[worker]
	if !ok {
		return StatusDead
	}
	elapsed := d.cfg.Now().Sub(p.last)
	phi := d.phiLocked(p)
	switch {
	// Dead by accrual only after the hard suspect bound has also passed:
	// respawning a worker is expensive, and a metronomic beat history makes
	// phi explode on the first scheduling hiccup — one late beat must never
	// trigger a respawn on its own.
	case elapsed >= d.cfg.DeadAfter || (phi >= d.cfg.PhiDead && elapsed >= d.cfg.SuspectAfter):
		return StatusDead
	case elapsed >= d.cfg.SuspectAfter || phi >= d.cfg.PhiSuspect:
		return StatusSuspect
	default:
		return StatusHealthy
	}
}

// LastBeat returns the time of the worker's most recent heartbeat.
func (d *Detector) LastBeat(worker int) (time.Time, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	p, ok := d.peers[worker]
	if !ok {
		return time.Time{}, false
	}
	return p.last, true
}
