package supervise

import (
	"reflect"
	"testing"
	"time"

	"ecgraph/internal/transport"
)

// TestMembershipAnnounceRPC: join/leave/view round-trip over the in-process
// transport through the wrapped monitor handler.
func TestMembershipAnnounceRPC(t *testing.T) {
	net := transport.NewInProc(6)
	defer net.Close()
	const monitor = 4
	m := NewMembership([]int{0, 1, 2, 3})
	net.Register(monitor, m.WrapHandler(func(method string, req []byte) ([]byte, error) {
		t.Fatalf("membership RPC leaked to inner handler: %s", method)
		return nil, nil
	}))

	v, err := AnnounceJoin(net, 5, monitor)
	if err != nil {
		t.Fatal(err)
	}
	if v.Gen != 0 || !reflect.DeepEqual(v.Members, []int{0, 1, 2, 3}) {
		t.Fatalf("join response must return the still-current view, got %v", v)
	}
	if _, err := AnnounceLeave(net, 2, monitor); err != nil {
		t.Fatal(err)
	}
	if !m.HasPending() {
		t.Fatal("announcements did not queue")
	}

	view, joined, left := m.Advance(7)
	if view.Gen != 1 || view.Epoch != 7 {
		t.Fatalf("advance: got %v", view)
	}
	if !reflect.DeepEqual(view.Members, []int{0, 1, 3, 5}) {
		t.Fatalf("members after transition: %v", view.Members)
	}
	if !reflect.DeepEqual(joined, []int{5}) || !reflect.DeepEqual(left, []int{2}) {
		t.Fatalf("joined %v left %v", joined, left)
	}

	got, err := FetchView(net, 0, monitor)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, view) {
		t.Fatalf("fetched view %v != installed %v", got, view)
	}
}

// TestMembershipDedup: double joins and leaves of non-members are
// acknowledged without queueing, and the latest queued intent wins when a
// node flaps before the boundary.
func TestMembershipDedup(t *testing.T) {
	m := NewMembership([]int{0, 1})

	m.enqueue(0, true, "double join")  // already a member
	m.enqueue(9, false, "never there") // not a member, not joining
	if m.HasPending() {
		t.Fatal("no-op announcements must not queue")
	}

	// Join then leave before the boundary: the node must not appear.
	m.enqueue(5, true, "join")
	m.enqueue(5, false, "changed mind")
	// Leave then rejoin before the boundary: the node must stay.
	m.enqueue(1, false, "drain")
	m.enqueue(1, true, "cancel drain")
	view, joined, left := m.Advance(3)
	if !reflect.DeepEqual(view.Members, []int{0, 1}) {
		t.Fatalf("flapping nodes resolved wrong: %v", view.Members)
	}
	if len(joined) != 0 || len(left) != 0 {
		t.Fatalf("net-zero flaps reported as churn: +%v -%v", joined, left)
	}
	if view.Gen != 1 {
		t.Fatalf("a drained pending queue still advances the generation, got gen %d", view.Gen)
	}
}

// TestMembershipAdvanceNoPending: with nothing queued the view is returned
// unchanged and the generation does not move.
func TestMembershipAdvanceNoPending(t *testing.T) {
	m := NewMembership([]int{2, 0})
	view, joined, left := m.Advance(9)
	if view.Gen != 0 || view.Epoch != 0 || joined != nil || left != nil {
		t.Fatalf("no-op advance mutated the view: %v +%v -%v", view, joined, left)
	}
	if !reflect.DeepEqual(view.Members, []int{0, 2}) {
		t.Fatalf("boot roster not sorted: %v", view.Members)
	}
}

// TestMembershipEmptyClusterPanics: a transition that would remove every
// worker must refuse loudly instead of deadlocking the barrier.
func TestMembershipEmptyClusterPanics(t *testing.T) {
	m := NewMembership([]int{0})
	m.ForceLeave(0, "last one out")
	defer func() {
		if recover() == nil {
			t.Fatal("emptying transition did not panic")
		}
	}()
	m.Advance(1)
}

// TestSetWorkersRoster: SetWorkers starts emitters for joiners, stops them
// for leavers, and resets detector state so a rejoining node is not
// condemned by its previous incarnation's silence.
func TestSetWorkersRoster(t *testing.T) {
	net := transport.NewInProc(4)
	defer net.Close()
	s := New(Options{HeartbeatInterval: time.Millisecond}, net, []int{0, 1}, 3)
	net.Register(3, s.WrapHandler(func(method string, req []byte) ([]byte, error) {
		return nil, nil
	}))
	s.Start()
	defer s.Stop()

	waitBeats := func(node int, min int64) {
		t.Helper()
		deadline := time.Now().Add(2 * time.Second)
		for {
			if sent, _ := s.BeatCounts(node); sent >= min {
				return
			}
			if time.Now().After(deadline) {
				sent, acked := s.BeatCounts(node)
				t.Fatalf("node %d stuck at %d sent / %d acked, want >= %d", node, sent, acked, min)
			}
			time.Sleep(time.Millisecond)
		}
	}
	waitBeats(0, 3)
	waitBeats(1, 3)

	s.SetWorkers([]int{0, 2}) // 1 leaves, 2 joins
	if got := s.Workers(); !reflect.DeepEqual(got, []int{0, 2}) {
		t.Fatalf("roster after SetWorkers: %v", got)
	}
	waitBeats(2, 3)
	sent1, _ := s.BeatCounts(1)
	time.Sleep(20 * time.Millisecond)
	if after, _ := s.BeatCounts(1); after != sent1 {
		t.Fatalf("departed worker 1 still emitting (%d -> %d)", sent1, after)
	}

	// A re-added worker gets a fresh detector history: its status must be
	// healthy immediately even though its old incarnation went silent.
	s.SetWorkers([]int{0, 1, 2})
	if st := s.Status(1); st == StatusDead {
		t.Fatal("rejoined worker condemned by its previous incarnation")
	}
	waitBeats(1, 3)
}
