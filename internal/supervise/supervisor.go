package supervise

import (
	"fmt"
	"sort"
	"strconv"
	"sync"
	"time"

	"ecgraph/internal/obs"
	"ecgraph/internal/transport"
)

// RPC methods served by the supervisor through the monitor node's wrapped
// handler. Heartbeats travel over the ordinary cluster fabric so a network
// fault that isolates a worker also silences its heartbeats — the detector
// observes exactly what training would observe.
const (
	// MethodBeat is a worker-originated heartbeat (worker id + sequence).
	MethodBeat = "sup.beat"
	// MethodPing is a supervisor-originated liveness probe; any node that
	// answers is reachable.
	MethodPing = "sup.ping"
)

// Options parameterises the supervision layer end to end: heartbeat
// cadence, detector thresholds, recovery budgets, straggler deadlines and
// the numeric guards. The zero value of every field selects a sensible
// default; core.Config.Supervise == nil disables supervision entirely.
type Options struct {
	// HeartbeatInterval is the gap between worker heartbeats (default 25ms).
	HeartbeatInterval time.Duration
	// SuspectAfter / DeadAfter are hard silence bounds for the detector
	// (defaults 5x and 15x the heartbeat interval).
	SuspectAfter time.Duration
	DeadAfter    time.Duration
	// PhiSuspect / PhiDead are the accrual thresholds (defaults 2 and 8).
	PhiSuspect float64
	PhiDead    float64

	// MaxRecoveries bounds recovery attempts across the whole run before
	// the engine gives up and surfaces the underlying error (default 16).
	MaxRecoveries int
	// RecoveryBackoff is the pause between consecutive recovery attempts,
	// giving the detector time to accrue suspicion and transient storms
	// time to pass (default = HeartbeatInterval).
	RecoveryBackoff time.Duration
	// ProbeInterval is the gap between liveness probes while waiting for a
	// dead worker to become reachable again (default = HeartbeatInterval/2).
	ProbeInterval time.Duration
	// ProbeBudget caps how long one recovery attempt waits for a dead
	// worker to answer a probe before falling through to rollback or the
	// next attempt (default 40x ProbeInterval).
	ProbeBudget time.Duration

	// AutoRollback lets the engine roll back to the latest checkpoint (or
	// the run's initial state) and replay when recovery cannot proceed or
	// a numeric guard trips, instead of returning an error.
	AutoRollback bool
	// LossSpikeSigma trips the numeric guard when an epoch's loss exceeds
	// the running mean by this many running standard deviations (default
	// 8; negative disables the spike guard — NaN/Inf detection stays on).
	LossSpikeSigma float64

	// StragglerMult scales the per-peer EWMA response time into a ghost
	// exchange deadline: calls slower than Mult x EWMA are abandoned and
	// served from the degraded cache (default 8; negative disables).
	StragglerMult float64
	// MinDeadline / MaxDeadline clamp the adaptive deadline (defaults
	// 2ms / 2s).
	MinDeadline time.Duration
	MaxDeadline time.Duration
}

// WithDefaults fills unset fields.
func (o Options) WithDefaults() Options {
	if o.HeartbeatInterval <= 0 {
		o.HeartbeatInterval = 25 * time.Millisecond
	}
	if o.SuspectAfter <= 0 {
		o.SuspectAfter = 5 * o.HeartbeatInterval
	}
	if o.DeadAfter <= 0 {
		o.DeadAfter = 15 * o.HeartbeatInterval
	}
	if o.MaxRecoveries <= 0 {
		o.MaxRecoveries = 16
	}
	if o.RecoveryBackoff <= 0 {
		o.RecoveryBackoff = o.HeartbeatInterval
	}
	if o.ProbeInterval <= 0 {
		o.ProbeInterval = o.HeartbeatInterval / 2
	}
	if o.ProbeBudget <= 0 {
		o.ProbeBudget = 40 * o.ProbeInterval
	}
	if o.LossSpikeSigma == 0 {
		o.LossSpikeSigma = 8
	}
	if o.StragglerMult == 0 {
		o.StragglerMult = 8
	}
	if o.MinDeadline <= 0 {
		o.MinDeadline = 2 * time.Millisecond
	}
	if o.MaxDeadline <= 0 {
		o.MaxDeadline = 2 * time.Second
	}
	return o
}

// EventKind labels one entry of the supervision log.
type EventKind int

const (
	// EventSuspect: the detector downgraded a worker to suspect.
	EventSuspect EventKind = iota
	// EventDead: the detector declared a worker dead.
	EventDead
	// EventRespawn: a fresh worker replaced a dead one.
	EventRespawn
	// EventRehydrate: the respawned worker refetched its ghost store and
	// will pull parameters from the servers on its next epoch.
	EventRehydrate
	// EventExactSync: compensation state was reset cluster-wide and the
	// next forward round forced exact, re-baselining every EC pair.
	EventExactSync
	// EventRetry: the engine is re-running the failed epoch.
	EventRetry
	// EventRollback: the engine restored the latest checkpoint and is
	// replaying from its epoch.
	EventRollback
	// EventGuardTrip: a numeric guard (NaN/Inf or loss spike) fired.
	EventGuardTrip
	// EventRecovered: an epoch completed after one or more recoveries.
	EventRecovered
	// EventJoin: a worker announced it is joining the cluster.
	EventJoin
	// EventLeave: a worker announced a planned drain, or was forced out
	// after phi-detected permanent death.
	EventLeave
	// EventViewChange: the cluster transitioned to a new membership view
	// at an epoch boundary.
	EventViewChange
	// EventHandoff: vertex state (embeddings, EC residuals, caches) was
	// shipped from an old owner to a new one during a view transition.
	EventHandoff
	// EventPSPromote: a parameter-server range's hot-standby backup was
	// promoted to primary after the primary died.
	EventPSPromote
	// EventPSResync: a backup received a full-snapshot re-sync (fresh spawn
	// after a promotion, or recovery from a failed log-ship).
	EventPSResync
	// EventMonitorElect: monitor duty moved to another parameter-server
	// node after the monitor died.
	EventMonitorElect
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case EventSuspect:
		return "suspect"
	case EventDead:
		return "dead"
	case EventRespawn:
		return "respawn"
	case EventRehydrate:
		return "rehydrate"
	case EventExactSync:
		return "exact-sync"
	case EventRetry:
		return "retry"
	case EventRollback:
		return "rollback"
	case EventGuardTrip:
		return "guard-trip"
	case EventRecovered:
		return "recovered"
	case EventJoin:
		return "join"
	case EventLeave:
		return "leave"
	case EventViewChange:
		return "view-change"
	case EventHandoff:
		return "handoff"
	case EventPSPromote:
		return "ps-promote"
	case EventPSResync:
		return "ps-resync"
	case EventMonitorElect:
		return "monitor-elect"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event is one supervision decision, kept for the run log so every
// recovery is auditable after the fact.
type Event struct {
	Kind   EventKind
	Worker int // -1 when not specific to one worker
	Epoch  int
	Detail string
	Wall   time.Time
}

// String renders the event for run logs.
func (e Event) String() string {
	who := "cluster"
	if e.Worker >= 0 {
		who = fmt.Sprintf("worker %d", e.Worker)
	}
	if e.Detail == "" {
		return fmt.Sprintf("epoch %d: %s %s", e.Epoch, who, e.Kind)
	}
	return fmt.Sprintf("epoch %d: %s %s (%s)", e.Epoch, who, e.Kind, e.Detail)
}

// latencySource is the view of per-destination response times the
// straggler deadline derives from; transport.Reliable implements it.
type latencySource interface {
	AvgLatency(dst int) time.Duration
}

// Supervisor owns the failure detector, the heartbeat emitters and the
// supervision event log. The engine consults it between epoch attempts;
// workers consult it (through the worker.PeerHealth interface it
// satisfies) inside the ghost exchange.
type Supervisor struct {
	opts Options
	net  transport.Network
	lat  latencySource // nil when the transport keeps no latency stats
	det  *Detector

	mu       sync.Mutex
	monitor  int   // current monitor node; moves on re-election (SetMonitor)
	workers  []int // current roster, ascending; updated by SetWorkers
	watched  []int // non-worker nodes under supervision (the PS tier)
	events   []Event
	reported map[int]Status // last status change already logged per worker

	// One emitter goroutine per roster member, each with its own stop
	// channel so membership changes can start and stop them individually.
	running  bool
	emitters map[int]chan struct{}
	emitWG   sync.WaitGroup
	beats    map[int]*countingBeat

	// Telemetry counters, set by RegisterMetrics; nil handles no-op.
	eventsTotal *obs.CounterVec
	transitions *obs.CounterVec
}

type countingBeat struct{ sent, failed int64 }

// New builds a supervisor for the given worker nodes, monitored from
// monitorNode (conventionally the first parameter server, whose handler
// the engine wraps with WrapHandler so heartbeats have somewhere to land).
func New(opts Options, net transport.Network, workerNodes []int, monitorNode int) *Supervisor {
	opts = opts.WithDefaults()
	s := &Supervisor{
		opts:    opts,
		net:     net,
		workers: append([]int(nil), workerNodes...),
		monitor: monitorNode,
		det: NewDetector(DetectorConfig{
			HeartbeatInterval: opts.HeartbeatInterval,
			SuspectAfter:      opts.SuspectAfter,
			DeadAfter:         opts.DeadAfter,
			PhiSuspect:        opts.PhiSuspect,
			PhiDead:           opts.PhiDead,
		}),
		reported: make(map[int]Status),
		emitters: make(map[int]chan struct{}),
		beats:    make(map[int]*countingBeat),
	}
	if l, ok := net.(latencySource); ok {
		s.lat = l
	}
	for _, w := range workerNodes {
		s.det.Register(w)
	}
	return s
}

// Options returns the effective (defaulted) options.
func (s *Supervisor) Options() Options { return s.opts }

// Detector exposes the underlying failure detector.
func (s *Supervisor) Detector() *Detector { return s.det }

// WrapHandler layers the supervision RPCs over a node's existing handler:
// sup.beat and sup.ping are served here, everything else passes through.
func (s *Supervisor) WrapHandler(inner transport.Handler) transport.Handler {
	return func(method string, req []byte) ([]byte, error) {
		switch method {
		case MethodBeat:
			r := transport.NewReader(req)
			worker := int(r.Int32())
			s.det.Beat(worker)
			return nil, nil
		case MethodPing:
			return nil, nil
		default:
			return inner(method, req)
		}
	}
}

// Start launches one heartbeat emitter goroutine per worker node. Each
// emitter sends sup.beat from its worker's node id, so the beat crosses
// every transport wrapper (chaos, retries, TCP) as worker traffic and a
// partitioned worker goes silent exactly like its ghost exchanges do.
func (s *Supervisor) Start() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.running {
		return
	}
	s.running = true
	for _, node := range s.workers {
		s.startEmitterLocked(node)
	}
	for _, node := range s.watched {
		s.startEmitterLocked(node)
	}
}

// startEmitterLocked spawns the heartbeat emitter for one node; the caller
// holds s.mu and has checked s.running.
func (s *Supervisor) startEmitterLocked(node int) {
	if _, ok := s.emitters[node]; ok {
		return
	}
	stop := make(chan struct{})
	s.emitters[node] = stop
	s.emitWG.Add(1)
	go func() {
		defer s.emitWG.Done()
		ticker := time.NewTicker(s.opts.HeartbeatInterval)
		defer ticker.Stop()
		var seq uint32
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
			}
			seq++
			w := transport.NewWriter(8)
			w.Int32(int32(node))
			w.Uint32(seq)
			// The monitor is re-read every beat so emitters re-target after a
			// monitor re-election without being restarted.
			if _, err := s.net.Call(node, s.Monitor(), MethodBeat, w.Bytes()); err != nil {
				s.addBeat(node, false)
			} else {
				s.addBeat(node, true)
			}
		}
	}()
}

func (s *Supervisor) addBeat(node int, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b := s.beats[node]
	if b == nil {
		b = &countingBeat{}
		s.beats[node] = b
	}
	if ok {
		b.sent++
	} else {
		b.failed++
	}
}

// BeatCounts returns how many heartbeats the worker node's emitter
// delivered and how many failed in transit — test and log diagnostics.
func (s *Supervisor) BeatCounts(node int) (sent, failed int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b := s.beats[node]
	if b == nil {
		return 0, 0
	}
	return b.sent, b.failed
}

// Stop terminates the heartbeat emitters and waits for them to exit.
func (s *Supervisor) Stop() {
	s.mu.Lock()
	if !s.running {
		s.mu.Unlock()
		return
	}
	s.running = false
	for node, stop := range s.emitters {
		close(stop)
		delete(s.emitters, node)
	}
	s.mu.Unlock()
	s.emitWG.Wait()
}

// Monitor returns the node currently hosting the supervision and
// membership control plane.
func (s *Supervisor) Monitor() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.monitor
}

// SetMonitor moves monitor duty to another node — the re-election step
// after the monitor dies. Running heartbeat emitters re-target at their
// next beat; probes originate from the new monitor from now on. The caller
// must have wrapped the new node's handler with WrapHandler (the engine
// wraps every parameter-server node up front, so any of them can take
// over without a handler swap).
func (s *Supervisor) SetMonitor(node int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.monitor = node
}

// WatchNodes places additional non-worker nodes (the parameter-server
// tier) under supervision: each gets a detector registration and a
// heartbeat emitter, like a worker, but stays out of the worker roster so
// membership transitions (SetWorkers) never touch it. The monitor node
// itself beats over a local call that no fault layer touches — its death is
// established by probing from other nodes, not by phi.
func (s *Supervisor) WatchNodes(nodes []int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	have := make(map[int]bool, len(s.watched))
	for _, n := range s.watched {
		have[n] = true
	}
	for _, n := range nodes {
		if have[n] {
			continue
		}
		s.watched = append(s.watched, n)
		s.det.Register(n)
		if s.running {
			s.startEmitterLocked(n)
		}
	}
	sort.Ints(s.watched)
}

// Unwatch removes a node from the watched set (a departed PS node whose id
// will be reused by a respawned backup), stopping its emitter.
func (s *Supervisor) Unwatch(node int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, n := range s.watched {
		if n == node {
			s.watched = append(s.watched[:i], s.watched[i+1:]...)
			break
		}
	}
	if stop, ok := s.emitters[node]; ok {
		close(stop)
		delete(s.emitters, node)
	}
	delete(s.reported, node)
}

// Workers returns the current roster (ascending node ids).
func (s *Supervisor) Workers() []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]int(nil), s.workers...)
}

// SetWorkers transitions the supervisor to a new roster at a membership
// view change: joined nodes are registered with the failure detector and
// get heartbeat emitters (when the supervisor is running); departed nodes'
// emitters stop and their logged-status memory clears, so a node id reused
// by a later join starts with a clean healthy record. The detector keeps
// the departed node's history — it is simply never consulted again unless
// the node rejoins, at which point Register resets it.
func (s *Supervisor) SetWorkers(nodes []int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	next := make(map[int]bool, len(nodes))
	for _, n := range nodes {
		next[n] = true
	}
	current := make(map[int]bool, len(s.workers))
	for _, n := range s.workers {
		current[n] = true
	}
	for _, n := range nodes {
		if !current[n] {
			s.det.Register(n)
			delete(s.reported, n)
			if s.running {
				s.startEmitterLocked(n)
			}
		}
	}
	for _, n := range s.workers {
		if !next[n] {
			if stop, ok := s.emitters[n]; ok {
				close(stop)
				delete(s.emitters, n)
			}
			delete(s.reported, n)
		}
	}
	s.workers = append(s.workers[:0], nodes...)
	sort.Ints(s.workers)
}

// Status returns the detector's verdict for a worker, logging
// healthy→suspect→dead transitions the first time they are observed.
func (s *Supervisor) Status(worker int) Status {
	st := s.det.Status(worker)
	s.mu.Lock()
	prev, seen := s.reported[worker]
	if (!seen && st != StatusHealthy) || (seen && st != prev) {
		s.reported[worker] = st
		s.mu.Unlock()
		s.transitions.With(strconv.Itoa(worker), st.String()).Inc()
		switch st {
		case StatusSuspect:
			s.Record(EventSuspect, worker, -1, fmt.Sprintf("phi %.1f", s.det.Phi(worker)))
		case StatusDead:
			s.Record(EventDead, worker, -1, fmt.Sprintf("phi %.1f", s.det.Phi(worker)))
		}
		return st
	}
	s.mu.Unlock()
	return st
}

// Dead returns the roster members the detector currently declares dead.
func (s *Supervisor) Dead() []int {
	var out []int
	for _, w := range s.Workers() {
		if s.Status(w) == StatusDead {
			out = append(out, w)
		}
	}
	return out
}

// Probe sends one liveness ping from the monitor node; a response means
// the node is reachable again and counts as a heartbeat.
func (s *Supervisor) Probe(node int) bool {
	return s.ProbeFrom(s.Monitor(), node)
}

// ProbeFrom sends one liveness ping from an arbitrary source node — how
// the failover path checks whether the *monitor itself* is reachable, a
// question the monitor cannot answer about itself (its self-probe is a
// local call no fault layer touches).
func (s *Supervisor) ProbeFrom(src, node int) bool {
	if _, err := s.net.Call(src, node, MethodPing, nil); err != nil {
		return false
	}
	s.det.Beat(node)
	return true
}

// AwaitReachable probes a dead node until it answers or the budget runs
// out. Probes are real transport calls, so a crash window expressed over
// the chaos call sequence is drained by the probing itself — modelling an
// operator or orchestrator restarting the node while the cluster knocks.
func (s *Supervisor) AwaitReachable(node int, budget time.Duration) bool {
	deadline := time.Now().Add(budget)
	for {
		if s.Probe(node) {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(s.opts.ProbeInterval)
	}
}

// Record appends an event to the supervision log.
func (s *Supervisor) Record(kind EventKind, worker, epoch int, detail string) {
	s.eventsTotal.With(kind.String()).Inc()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.events = append(s.events, Event{Kind: kind, Worker: worker, Epoch: epoch, Detail: detail, Wall: time.Now()})
}

// Events returns a snapshot of the supervision log.
func (s *Supervisor) Events() []Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Event(nil), s.events...)
}

// ---- worker.PeerHealth implementation ----

// SkipPeer reports whether ghost exchanges with the peer should be served
// from the degraded cache without even attempting the call: true for
// suspect and dead peers, so healthy workers stop queueing behind a
// stalled one (the exchange still happens once the staleness bound would
// be exceeded — the worker only skips while a degraded serve is legal).
func (s *Supervisor) SkipPeer(peer int) bool {
	// Through the logging Status, not the raw detector: a transient suspect
	// that silently degrades ghost fetches and leaves no trace in the event
	// log is undiagnosable from the outside.
	return s.Status(peer) != StatusHealthy
}

// PeerDeadline returns the straggler deadline for calls to the peer:
// StragglerMult x the transport's EWMA response time, clamped to
// [MinDeadline, MaxDeadline]. Zero (no deadline override) when the
// transport keeps no latency stats or the multiplier is disabled.
func (s *Supervisor) PeerDeadline(peer int) time.Duration {
	if s.lat == nil || s.opts.StragglerMult <= 0 {
		return 0
	}
	avg := s.lat.AvgLatency(peer)
	if avg <= 0 {
		return 0
	}
	d := time.Duration(float64(avg) * s.opts.StragglerMult)
	if d < s.opts.MinDeadline {
		d = s.opts.MinDeadline
	}
	if d > s.opts.MaxDeadline {
		d = s.opts.MaxDeadline
	}
	return d
}
