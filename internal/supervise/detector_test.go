package supervise

import (
	"math"
	"testing"
	"time"
)

// fakeClock is a manually advanced clock for deterministic detector tests.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func (c *fakeClock) set(t time.Time)         { c.t = t }
func newFakeClock() *fakeClock               { return &fakeClock{t: time.Unix(1000, 0)} }
func testDetector(clk *fakeClock) *Detector {
	return NewDetector(DetectorConfig{
		HeartbeatInterval: 10 * time.Millisecond,
		SuspectAfter:      50 * time.Millisecond,
		DeadAfter:         150 * time.Millisecond,
		Now:               clk.now,
	})
}

// TestDetectorStateMachine walks healthy → suspect → dead on growing
// silence and back to healthy on a heartbeat. With no samples yet the
// detector models inter-arrivals as N(HB, HB/4), so under the fake clock
// every phi value below is deterministic: ~0.2 at 5ms of silence, ~4.5 at
// 20ms (suspect band [2, 8)), +Inf past the erfc underflow.
func TestDetectorStateMachine(t *testing.T) {
	clk := newFakeClock()
	d := testDetector(clk)
	d.Register(1)

	if st := d.Status(1); st != StatusHealthy {
		t.Fatalf("fresh registration: status %v, want healthy", st)
	}
	clk.advance(5 * time.Millisecond)
	if st := d.Status(1); st != StatusHealthy {
		t.Fatalf("at 5ms silence: status %v, want healthy", st)
	}

	// 20ms of silence: phi crosses PhiSuspect but stays below PhiDead.
	clk.advance(15 * time.Millisecond)
	if phi := d.Phi(1); phi < 2 || phi >= 8 {
		t.Fatalf("test premise broken: phi %v at 20ms, want [2, 8)", phi)
	}
	if st := d.Status(1); st != StatusSuspect {
		t.Fatalf("at 20ms silence: status %v, want suspect", st)
	}

	// Past DeadAfter: dead by the hard bound regardless of phi.
	clk.advance(140 * time.Millisecond)
	if st := d.Status(1); st != StatusDead {
		t.Fatalf("at 160ms silence: status %v, want dead", st)
	}

	// One heartbeat revives the worker, and regular beats keep it healthy.
	d.Beat(1)
	if st := d.Status(1); st != StatusHealthy {
		t.Fatalf("after revival beat: status %v, want healthy", st)
	}
	for i := 0; i < 20; i++ {
		clk.advance(10 * time.Millisecond)
		d.Beat(1)
	}
	if st := d.Status(1); st != StatusHealthy {
		t.Fatalf("after regular beats: status %v, want healthy", st)
	}
}

// TestDetectorPhiAccrues verifies phi is monotone in elapsed silence and
// crosses the suspicion thresholds in order.
func TestDetectorPhiAccrues(t *testing.T) {
	clk := newFakeClock()
	d := testDetector(clk)
	d.Register(0)
	for i := 0; i < 16; i++ {
		clk.advance(10 * time.Millisecond)
		d.Beat(0)
	}

	var prev float64 = -1
	for _, silence := range []time.Duration{
		5 * time.Millisecond, 15 * time.Millisecond, 30 * time.Millisecond, 60 * time.Millisecond,
	} {
		save := clk.t
		clk.advance(silence)
		phi := d.Phi(0)
		clk.set(save)
		if math.IsNaN(phi) {
			t.Fatalf("phi(%v) is NaN", silence)
		}
		if phi < prev {
			t.Fatalf("phi not monotone: phi(%v)=%v < previous %v", silence, phi, prev)
		}
		prev = phi
	}
	if prev < 2 {
		t.Fatalf("phi after 6x the heartbeat interval is %v, expected suspicion >= 2", prev)
	}
}

// TestDetectorPhiDeadNeedsSuspectBound: a beat history so regular that phi
// diverges on the first late beat must not declare the worker dead before
// the hard suspect bound has also elapsed — one scheduling hiccup may make
// the worker suspect, never trigger a respawn.
func TestDetectorPhiDeadNeedsSuspectBound(t *testing.T) {
	clk := newFakeClock()
	d := testDetector(clk)
	d.Register(0)
	for i := 0; i < 16; i++ {
		clk.advance(10 * time.Millisecond)
		d.Beat(0)
	}
	clk.advance(30 * time.Millisecond) // phi >> PhiDead, elapsed < SuspectAfter
	if phi := d.Phi(0); phi < 8 {
		t.Fatalf("test premise broken: phi %v should exceed PhiDead", phi)
	}
	if st := d.Status(0); st != StatusSuspect {
		t.Fatalf("status %v before the suspect bound, want suspect (not dead)", st)
	}
	clk.advance(30 * time.Millisecond) // past SuspectAfter, phi still diverged
	if st := d.Status(0); st != StatusDead {
		t.Fatalf("status %v past the suspect bound with diverged phi, want dead", st)
	}
}

// TestDetectorUnknownWorker: workers never registered are maximally
// suspicious, not silently healthy.
func TestDetectorUnknownWorker(t *testing.T) {
	d := testDetector(newFakeClock())
	if st := d.Status(7); st != StatusDead {
		t.Fatalf("unknown worker status %v, want dead", st)
	}
	if phi := d.Phi(7); !math.IsInf(phi, 1) {
		t.Fatalf("unknown worker phi %v, want +Inf", phi)
	}
	if _, ok := d.LastBeat(7); ok {
		t.Fatalf("unknown worker reported a last beat")
	}
}

// TestDetectorBeatBeforeRegister: a heartbeat from an unregistered worker
// starts monitoring it rather than being dropped.
func TestDetectorBeatBeforeRegister(t *testing.T) {
	clk := newFakeClock()
	d := testDetector(clk)
	d.Beat(3)
	if st := d.Status(3); st != StatusHealthy {
		t.Fatalf("status after first beat %v, want healthy", st)
	}
	if _, ok := d.LastBeat(3); !ok {
		t.Fatalf("no last beat recorded after Beat")
	}
}

// TestDetectorIrregularBeatsWidenTolerance: a worker with naturally noisy
// heartbeat cadence accrues suspicion more slowly than a metronomic one at
// the same absolute silence, because phi is scaled by the observed spread.
func TestDetectorIrregularBeatsWidenTolerance(t *testing.T) {
	clkR, clkN := newFakeClock(), newFakeClock()
	regular := testDetector(clkR)
	regular.Register(0)
	noisy := testDetector(clkN)
	noisy.Register(0)

	gaps := []time.Duration{4, 22, 7, 18, 5, 25, 9, 16, 4, 23, 6, 20}
	for range gaps {
		clkR.advance(10 * time.Millisecond)
		regular.Beat(0)
	}
	for _, g := range gaps {
		clkN.advance(g * time.Millisecond)
		noisy.Beat(0)
	}

	// Equal absolute silence after each detector's last beat.
	clkR.advance(30 * time.Millisecond)
	clkN.advance(30 * time.Millisecond)
	if pr, pn := regular.Phi(0), noisy.Phi(0); pn >= pr {
		t.Fatalf("noisy-cadence phi %v should be below regular-cadence phi %v at equal silence", pn, pr)
	}
}
