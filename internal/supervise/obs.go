package supervise

import (
	"strconv"

	"ecgraph/internal/obs"
)

// RegisterMetrics exports the supervisor's live state on reg:
//
//	ecgraph_supervise_phi{worker}          phi-accrual suspicion level
//	ecgraph_supervise_status{worker}       0 healthy, 1 suspect, 2 dead
//	ecgraph_supervise_transitions_total{worker,to}  detector state changes
//	ecgraph_supervise_events_total{kind}   supervision log entries by kind
//
// Phi and status are read from the detector at scrape time (no hot-path
// bookkeeping); the counters are incremented where Status and Record
// already serialise. Call before Start; a nil registry is a no-op.
func (s *Supervisor) RegisterMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	s.eventsTotal = reg.CounterVec("ecgraph_supervise_events_total",
		"Supervision log entries by kind.", "kind")
	s.transitions = reg.CounterVec("ecgraph_supervise_transitions_total",
		"Detector state transitions first observed per worker.", "worker", "to")
	phi := reg.GaugeVec("ecgraph_supervise_phi",
		"Phi-accrual suspicion level per worker.", "worker")
	status := reg.GaugeVec("ecgraph_supervise_status",
		"Detector verdict per worker: 0 healthy, 1 suspect, 2 dead.", "worker")
	det := s.det
	reg.OnScrapeNamed("supervise", func() {
		// The roster is read per scrape, not snapshotted at registration:
		// under elastic membership workers join and leave mid-run, and a
		// joiner's phi must appear without re-registering the metrics.
		for _, w := range s.Workers() {
			n := strconv.Itoa(w)
			phi.With(n).Set(det.Phi(w))
			// The raw detector verdict, not Supervisor.Status: a scrape must
			// observe state, never append to the supervision log.
			status.With(n).Set(float64(det.Status(w)))
		}
	})
}
