package supervise

import (
	"fmt"
	"testing"
	"time"

	"ecgraph/internal/transport"
)

// TestWrapHandlerRoutes: sup.beat feeds the detector, sup.ping answers,
// everything else reaches the inner handler untouched.
func TestWrapHandlerRoutes(t *testing.T) {
	net := transport.NewInProc(2)
	defer net.Close()
	s := New(Options{HeartbeatInterval: 10 * time.Millisecond}, net, []int{0}, 1)

	inner := 0
	h := s.WrapHandler(func(method string, req []byte) ([]byte, error) {
		inner++
		return []byte("inner:" + method), nil
	})

	before, _ := s.Detector().LastBeat(0)
	w := transport.NewWriter(8)
	w.Int32(0)
	w.Uint32(1)
	time.Sleep(time.Millisecond) // ensure the beat timestamp moves
	if _, err := h(MethodBeat, w.Bytes()); err != nil {
		t.Fatal(err)
	}
	after, _ := s.Detector().LastBeat(0)
	if !after.After(before) {
		t.Fatalf("beat did not advance LastBeat (%v -> %v)", before, after)
	}

	if _, err := h(MethodPing, nil); err != nil {
		t.Fatalf("ping: %v", err)
	}
	if inner != 0 {
		t.Fatalf("supervision RPCs leaked to the inner handler (%d calls)", inner)
	}
	resp, err := h("other.method", nil)
	if err != nil || string(resp) != "inner:other.method" {
		t.Fatalf("passthrough broken: %q, %v", resp, err)
	}
	if inner != 1 {
		t.Fatalf("inner handler saw %d calls, want 1", inner)
	}
}

// TestEmittersAndProbe runs real heartbeat emitters over the in-process
// transport: workers stay healthy while emitting, and a probe succeeds
// against any registered node and counts as a beat.
func TestEmittersAndProbe(t *testing.T) {
	const workers = 2
	net := transport.NewInProc(workers + 1)
	defer net.Close()
	s := New(Options{HeartbeatInterval: 2 * time.Millisecond}, net, []int{0, 1}, workers)
	// Monitor and workers all answer the supervision RPCs.
	for n := 0; n <= workers; n++ {
		net.Register(n, s.WrapHandler(func(method string, req []byte) ([]byte, error) {
			return nil, fmt.Errorf("unexpected method %s", method)
		}))
	}

	s.Start()
	defer s.Stop()
	deadline := time.Now().Add(2 * time.Second)
	for {
		sent0, _ := s.BeatCounts(0)
		sent1, _ := s.BeatCounts(1)
		if sent0 >= 5 && sent1 >= 5 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("emitters too slow: %d/%d beats delivered", sent0, sent1)
		}
		time.Sleep(time.Millisecond)
	}
	for _, w := range []int{0, 1} {
		if st := s.Status(w); st != StatusHealthy {
			t.Fatalf("worker %d status %v while beating, want healthy", w, st)
		}
	}
	if !s.Probe(0) {
		t.Fatalf("probe to a live node failed")
	}
	if dead := s.Dead(); len(dead) != 0 {
		t.Fatalf("dead set %v on a healthy cluster", dead)
	}
}

// fakeLatNet is a Network with a canned per-destination latency estimate.
type fakeLatNet struct {
	transport.Network
	avg map[int]time.Duration
}

func (f *fakeLatNet) AvgLatency(dst int) time.Duration { return f.avg[dst] }

// TestPeerDeadlineClamp: the straggler deadline is Mult x EWMA clamped to
// [MinDeadline, MaxDeadline], and zero without latency data.
func TestPeerDeadlineClamp(t *testing.T) {
	inner := transport.NewInProc(4)
	defer inner.Close()
	net := &fakeLatNet{Network: inner, avg: map[int]time.Duration{
		1: 10 * time.Millisecond,
		2: 10 * time.Microsecond,
		3: 10 * time.Second,
	}}
	s := New(Options{
		StragglerMult: 4,
		MinDeadline:   time.Millisecond,
		MaxDeadline:   time.Second,
	}, net, []int{0, 1, 2, 3}, 0)

	if d := s.PeerDeadline(1); d != 40*time.Millisecond {
		t.Fatalf("deadline for 10ms EWMA: %v, want 40ms", d)
	}
	if d := s.PeerDeadline(2); d != time.Millisecond {
		t.Fatalf("deadline below floor not clamped: %v", d)
	}
	if d := s.PeerDeadline(3); d != time.Second {
		t.Fatalf("deadline above ceiling not clamped: %v", d)
	}
	if d := s.PeerDeadline(0); d != 0 {
		t.Fatalf("no latency sample should mean no deadline, got %v", d)
	}

	// A transport without latency stats disables deadlines entirely.
	plain := New(Options{}, inner, []int{0}, 1)
	if d := plain.PeerDeadline(0); d != 0 {
		t.Fatalf("deadline without a latency source: %v", d)
	}
}

// TestEventString covers the log rendering used by the CLIs.
func TestEventString(t *testing.T) {
	e := Event{Kind: EventRespawn, Worker: 2, Epoch: 7, Detail: "x"}
	if got := e.String(); got != "epoch 7: worker 2 respawn (x)" {
		t.Fatalf("event string %q", got)
	}
	c := Event{Kind: EventExactSync, Worker: -1, Epoch: 3}
	if got := c.String(); got != "epoch 3: cluster exact-sync" {
		t.Fatalf("cluster event string %q", got)
	}
	if got := EventKind(99).String(); got != "EventKind(99)" {
		t.Fatalf("unknown kind string %q", got)
	}
}

// TestOptionsDefaults pins the derived defaults the flags document.
func TestOptionsDefaults(t *testing.T) {
	o := Options{HeartbeatInterval: 10 * time.Millisecond}.WithDefaults()
	if o.SuspectAfter != 50*time.Millisecond || o.DeadAfter != 150*time.Millisecond {
		t.Fatalf("silence bounds %v/%v, want 5x/15x the heartbeat", o.SuspectAfter, o.DeadAfter)
	}
	if o.MaxRecoveries != 16 || o.RecoveryBackoff != o.HeartbeatInterval {
		t.Fatalf("recovery defaults: %+v", o)
	}
	if o.ProbeInterval != 5*time.Millisecond || o.ProbeBudget != 200*time.Millisecond {
		t.Fatalf("probe defaults: %v / %v", o.ProbeInterval, o.ProbeBudget)
	}
	if o.LossSpikeSigma != 8 || o.StragglerMult != 8 {
		t.Fatalf("guard defaults: %+v", o)
	}
}
