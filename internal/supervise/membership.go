// Elastic cluster membership: versioned views of the worker roster, with
// join and leave announcements carried over the ordinary cluster transport
// and applied at epoch boundaries.
//
// The membership manager lives on the monitor node (the first parameter
// server, like the failure detector) and is the single source of truth for
// who is in the cluster. A view is an epoch-stamped roster with a
// generation number; announcements queue as pending changes and the engine
// transitions the cluster to the next generation at the boundary before an
// epoch runs — the synchronous barrier means no epoch ever observes two
// rosters. Workers joining announce from their own node id, so a join that
// cannot reach the monitor fails exactly like any other call from that
// node would.
package supervise

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"ecgraph/internal/transport"
)

// Membership RPC methods served through the monitor node's wrapped handler.
const (
	// MethodJoin announces a new worker node; it queues until the next
	// epoch-boundary view transition.
	MethodJoin = "mem.join"
	// MethodLeave announces a planned departure (drain); the node keeps
	// serving until the transition removes it.
	MethodLeave = "mem.leave"
	// MethodView returns the current view (generation, epoch, members).
	MethodView = "mem.view"
)

// View is one generation of the cluster roster: the worker node ids active
// from the epoch it was installed at until the next transition.
type View struct {
	// Gen is the view's generation number, incremented on every transition.
	Gen int
	// Epoch is the training epoch the view was installed at (the first
	// epoch that runs under it).
	Epoch int
	// Members lists the active worker node ids, ascending.
	Members []int
}

// Has reports whether node is a member of the view.
func (v View) Has(node int) bool {
	for _, m := range v.Members {
		if m == node {
			return true
		}
	}
	return false
}

// Clone returns a deep copy.
func (v View) Clone() View {
	v.Members = append([]int(nil), v.Members...)
	return v
}

// String renders the view for logs.
func (v View) String() string {
	return fmt.Sprintf("gen %d @ epoch %d: workers %v", v.Gen, v.Epoch, v.Members)
}

// Membership tracks the cluster's versioned worker roster and the queued
// join/leave announcements. Handler goroutines enqueue; the engine drains
// at epoch boundaries via Advance. All methods are safe for concurrent use.
type Membership struct {
	mu      sync.Mutex
	view    View
	pending []pendingChange
	events  []Event
}

type pendingChange struct {
	node   int
	join   bool
	detail string
}

// NewMembership builds the manager with generation 0 installed at epoch 0
// over the boot roster.
func NewMembership(workers []int) *Membership {
	m := &Membership{view: View{Gen: 0, Epoch: 0, Members: append([]int(nil), workers...)}}
	sort.Ints(m.view.Members)
	return m
}

// View returns the current installed view.
func (m *Membership) View() View {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.view.Clone()
}

// HasPending reports whether announcements are queued for the next
// transition.
func (m *Membership) HasPending() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.pending) > 0
}

// enqueue records one announcement, deduplicating no-ops: a join of a
// current member with no pending leave (the double-join case — e.g. an
// announcement retried after a lost response) and a leave of a node that is
// neither a member nor joining are acknowledged without queueing.
func (m *Membership) enqueue(node int, join bool, detail string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	member := m.view.Has(node)
	for _, p := range m.pending {
		if p.node == node {
			member = p.join // latest queued intent wins
		}
	}
	if join == member {
		kind := EventLeave
		if join {
			kind = EventJoin
		}
		m.recordLocked(kind, node, m.view.Epoch, "duplicate announcement ignored: "+detail)
		return
	}
	m.pending = append(m.pending, pendingChange{node: node, join: join, detail: detail})
	if join {
		m.recordLocked(EventJoin, node, m.view.Epoch, detail)
	} else {
		m.recordLocked(EventLeave, node, m.view.Epoch, detail)
	}
}

// ForceLeave queues a departure on the node's behalf — the phi-detected
// permanent-death path, where the node cannot announce for itself.
func (m *Membership) ForceLeave(node int, detail string) {
	m.enqueue(node, false, detail)
}

// Advance installs the next view at the given epoch boundary, applying
// every queued announcement, and returns it along with the nodes that
// joined and left. With nothing pending it returns the current view and
// nil slices and does not advance the generation.
func (m *Membership) Advance(epoch int) (view View, joined, left []int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.pending) == 0 {
		return m.view.Clone(), nil, nil
	}
	members := make(map[int]bool, len(m.view.Members))
	for _, w := range m.view.Members {
		members[w] = true
	}
	// Collapse the queue to one net intent per node (latest wins) so a node
	// that flaps before the boundary — join then drain, or drain then
	// rejoin — is neither moved nor reported as churn.
	intent := make(map[int]bool, len(m.pending))
	for _, p := range m.pending {
		intent[p.node] = p.join
	}
	for node, join := range intent {
		if join && !members[node] {
			members[node] = true
			joined = append(joined, node)
		} else if !join && members[node] {
			delete(members, node)
			left = append(left, node)
		}
	}
	m.pending = nil
	next := View{Gen: m.view.Gen + 1, Epoch: epoch}
	for w := range members {
		next.Members = append(next.Members, w)
	}
	sort.Ints(next.Members)
	sort.Ints(joined)
	sort.Ints(left)
	if len(next.Members) == 0 {
		// An empty roster cannot train; refuse the transition so the engine
		// surfaces the pending leaves as an error instead of deadlocking.
		panic(fmt.Sprintf("supervise: view transition at epoch %d would empty the cluster", epoch))
	}
	m.view = next
	m.recordLocked(EventViewChange, -1, epoch,
		fmt.Sprintf("gen %d: +%v -%v -> %v", next.Gen, joined, left, next.Members))
	return m.view.Clone(), joined, left
}

// Record appends an event to the membership log.
func (m *Membership) Record(kind EventKind, node, epoch int, detail string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.recordLocked(kind, node, epoch, detail)
}

func (m *Membership) recordLocked(kind EventKind, node, epoch int, detail string) {
	m.events = append(m.events, Event{Kind: kind, Worker: node, Epoch: epoch, Detail: detail, Wall: time.Now()})
}

// Events returns a snapshot of the membership log.
func (m *Membership) Events() []Event {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]Event(nil), m.events...)
}

// WrapHandler layers the membership RPCs over the monitor node's handler,
// the same way Supervisor.WrapHandler layers the heartbeat RPCs.
func (m *Membership) WrapHandler(inner transport.Handler) transport.Handler {
	return func(method string, req []byte) ([]byte, error) {
		switch method {
		case MethodJoin, MethodLeave:
			r := transport.NewReader(req)
			node := int(r.Int32())
			if node < 0 {
				return nil, fmt.Errorf("supervise: invalid member node %d", node)
			}
			m.enqueue(node, method == MethodJoin, "announced over transport")
			return encodeView(m.View()), nil
		case MethodView:
			return encodeView(m.View()), nil
		default:
			return inner(method, req)
		}
	}
}

func encodeView(v View) []byte {
	w := transport.NewWriter(12 + 4*len(v.Members))
	w.Uint32(uint32(v.Gen))
	w.Uint32(uint32(v.Epoch))
	members := make([]int32, len(v.Members))
	for i, m := range v.Members {
		members[i] = int32(m)
	}
	w.Int32s(members)
	return w.Bytes()
}

func decodeView(b []byte) View {
	r := transport.NewReader(b)
	v := View{Gen: int(r.Uint32()), Epoch: int(r.Uint32())}
	for _, m := range r.Int32s() {
		v.Members = append(v.Members, int(m))
	}
	return v
}

// AnnounceJoin announces node's intent to join from node's own id, so the
// announcement crosses every transport wrapper as that node's traffic, and
// returns the monitor's current view.
func AnnounceJoin(net transport.Network, node, monitor int) (View, error) {
	return announce(net, node, monitor, MethodJoin)
}

// AnnounceLeave announces a planned drain of node from node's own id and
// returns the monitor's current view.
func AnnounceLeave(net transport.Network, node, monitor int) (View, error) {
	return announce(net, node, monitor, MethodLeave)
}

func announce(net transport.Network, node, monitor int, method string) (View, error) {
	w := transport.NewWriter(4)
	w.Int32(int32(node))
	resp, err := net.Call(node, monitor, method, w.Bytes())
	if err != nil {
		return View{}, fmt.Errorf("supervise: %s for node %d: %w", method, node, err)
	}
	return decodeView(resp), nil
}

// DialAnnounce announces a membership intent against a cluster monitor's TCP
// listener from outside the cluster's node table — how a fresh machine asks
// to join (or a departing one to drain) before it owns any transport slot.
// Returns the monitor's current view; the intent takes effect at the next
// epoch boundary.
func DialAnnounce(addr string, node int, join bool) (View, error) {
	if node < 0 {
		return View{}, fmt.Errorf("supervise: invalid member node %d", node)
	}
	method := MethodLeave
	if join {
		method = MethodJoin
	}
	w := transport.NewWriter(4)
	w.Int32(int32(node))
	resp, err := transport.DialCall(addr, method, w.Bytes())
	if err != nil {
		return View{}, fmt.Errorf("supervise: %s for node %d: %w", method, node, err)
	}
	return decodeView(resp), nil
}

// DialView fetches the current membership view from a cluster monitor's TCP
// listener address.
func DialView(addr string) (View, error) {
	resp, err := transport.DialCall(addr, MethodView, nil)
	if err != nil {
		return View{}, fmt.Errorf("supervise: fetch view: %w", err)
	}
	return decodeView(resp), nil
}

// FetchView reads the monitor's current view from the given node.
func FetchView(net transport.Network, node, monitor int) (View, error) {
	resp, err := net.Call(node, monitor, MethodView, nil)
	if err != nil {
		return View{}, fmt.Errorf("supervise: fetch view: %w", err)
	}
	return decodeView(resp), nil
}
