// Quickstart: train EC-Graph on the cora preset with full error-compensated
// compression and print the result. This is the smallest end-to-end use of
// the public API: load a dataset, configure the engine, train, inspect.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"ecgraph/internal/core"
	"ecgraph/internal/datasets"
	"ecgraph/internal/metrics"
	"ecgraph/internal/nn"
	"ecgraph/internal/worker"
)

func main() {
	// 1. Load a dataset. Presets mirror the paper's Table III at laptop
	//    scale; datasets.Generate builds custom graphs.
	d := datasets.MustLoad("cora")
	fmt.Printf("dataset %s: %d vertices, %d edges, %d features, %d classes\n",
		d.Name, d.Graph.N, d.Graph.NumEdges(), d.NumFeatures(), d.NumClasses)

	// 2. Configure the engine: a 2-layer GCN on 4 workers with ReqEC-FP and
	//    ResEC-BP at 2 bits — a 16× reduction of ghost-message bytes.
	cfg := core.Config{
		Dataset: d,
		Kind:    nn.KindGCN,
		Hidden:  []int{16},
		Workers: 4,
		Servers: 2,
		Epochs:  60,
		LR:      0.01,
		Seed:    1,
		Worker: worker.Options{
			FPScheme: worker.SchemeEC, FPBits: 2,
			BPScheme: worker.SchemeEC, BPBits: 2,
			Ttr: 10,
		},
	}

	// 3. Train.
	res, err := core.Train(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// 4. Inspect the result.
	fmt.Printf("test accuracy %.4f (best val %.4f at epoch %d)\n",
		res.TestAccuracy, res.BestVal, res.BestEpoch)
	fmt.Printf("avg epoch: %s simulated (%s traffic)\n",
		metrics.FormatSeconds(res.AvgEpochSeconds()),
		metrics.FormatBytes(res.AvgEpochBytes()))
	fmt.Printf("converged at epoch %d after %s\n",
		res.ConvergedEpoch, metrics.FormatSeconds(res.ConvergenceSimSeconds))
}
