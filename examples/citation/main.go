// Citation-network example: build a custom citation-style dataset with the
// generator, partition it with the METIS-like partitioner, and compare the
// three communication schemes (raw, compression-only, error-compensated) on
// accuracy, traffic and simulated epoch time — the workload the paper's
// introduction motivates (vertex classification on paper-citation graphs).
//
//	go run ./examples/citation
package main

import (
	"fmt"
	"log"
	"os"

	"ecgraph/internal/core"
	"ecgraph/internal/datasets"
	"ecgraph/internal/metrics"
	"ecgraph/internal/nn"
	"ecgraph/internal/partition"
	"ecgraph/internal/worker"
)

func main() {
	// A mid-sized citation network: 6k papers, 10 research areas, sparse
	// bag-of-words abstracts, strong homophily (papers cite their field).
	d := datasets.Generate(datasets.Config{
		Name: "citations-6k", N: 6000, AvgDegree: 6, NumFeatures: 300,
		NumClasses: 10, Homophily: 0.82, FeatureNoise: 0.8, LabelNoise: 0.12,
		TrainFrac: 0.4, ValFrac: 0.1, Seed: 7,
	})
	fmt.Printf("generated %s: %d vertices, %d edges, avg degree %.2f\n\n",
		d.Name, d.Graph.N, d.Graph.NumEdges(), d.Graph.AvgDegree())

	schemes := []struct {
		label string
		opts  worker.Options
	}{
		{"raw (Non-cp)", worker.Options{}},
		{"compress 2-bit", worker.Options{
			FPScheme: worker.SchemeCompress, FPBits: 2,
			BPScheme: worker.SchemeCompress, BPBits: 2}},
		{"EC 2-bit + tuner", worker.Options{
			FPScheme: worker.SchemeEC, FPBits: 2,
			BPScheme: worker.SchemeEC, BPBits: 2,
			Ttr: 10, AdaptiveBits: true}},
	}

	table := metrics.NewTable("citation network, 6 workers, METIS partitioning",
		"scheme", "test acc", "epoch traffic", "epoch time", "converged@")
	for _, s := range schemes {
		res, err := core.Train(core.Config{
			Dataset:     d,
			Kind:        nn.KindGCN,
			Hidden:      []int{32},
			Workers:     6,
			Servers:     2,
			Partitioner: partition.Metis{},
			Epochs:      50,
			LR:          0.01,
			Seed:        1,
			Worker:      s.opts,
		})
		if err != nil {
			log.Fatal(err)
		}
		table.AddRowStrings(s.label,
			fmt.Sprintf("%.4f", res.TestAccuracy),
			metrics.FormatBytes(res.AvgEpochBytes()),
			metrics.FormatSeconds(res.AvgEpochSeconds()),
			fmt.Sprintf("%d", res.ConvergedEpoch))
	}
	table.Render(os.Stdout)
}
