// GAT example: the attention-based GNN variant §III-B describes EC-Graph
// supporting (same communication topology as GCN: embeddings from
// in-neighbours forward, embedding gradients from out-neighbours backward).
// Trains a 2-layer single-head GAT on the cora preset, compares it with GCN
// and GraphSAGE, and prints per-class F1 so the attention head's effect is
// visible beyond plain accuracy.
//
//	go run ./examples/gat_attention
package main

import (
	"fmt"
	"os"

	"ecgraph/internal/datasets"
	"ecgraph/internal/graph"
	"ecgraph/internal/metrics"
	"ecgraph/internal/nn"
)

func main() {
	d := datasets.MustLoad("cora")
	adj := graph.Normalize(d.Graph)
	const epochs, lr = 40, 0.01

	table := metrics.NewTable("GNN variants on cora (single machine, full batch)",
		"model", "test acc", "macro F1", "best epoch")

	// GCN and GraphSAGE through the shared Model type.
	for _, kind := range []nn.Kind{nn.KindGCN, nn.KindSAGE} {
		m := nn.NewModel(kind, []int{d.NumFeatures(), 16, d.NumClasses}, 1)
		res := nn.TrainFullGraph(m, d, epochs, lr)
		logits := m.Forward(adj, d.Features)
		out := logits.H[len(logits.H)-1]
		table.AddRowStrings(kind.String(),
			fmt.Sprintf("%.4f", res.TestAccuracy),
			fmt.Sprintf("%.4f", nn.MacroF1(out, d.Labels, d.TestIdx(), d.NumClasses)),
			fmt.Sprintf("%d", res.BestEpoch))
	}

	// GAT through its dedicated attention implementation: single-head and
	// the standard 4-head variant.
	for _, heads := range []int{1, 4} {
		gat := nn.NewGATMultiHead([]int{d.NumFeatures(), 16, d.NumClasses}, heads, 1)
		res := nn.TrainGAT(gat, adj, d.Features, d.Labels, d.TrainMask, d.ValIdx(), d.TestIdx(), epochs, lr)
		out := gat.Forward(adj, d.Features).Out
		table.AddRowStrings(fmt.Sprintf("gat-%dhead", heads),
			fmt.Sprintf("%.4f", res.TestAccuracy),
			fmt.Sprintf("%.4f", nn.MacroF1(out, d.Labels, d.TestIdx(), d.NumClasses)),
			fmt.Sprintf("%d", res.BestEpoch))
	}

	table.Render(os.Stdout)
}
