// Social-network example: a dense, high-degree graph (the Reddit-like
// regime where the paper's Fig. 6 shows compression errors bite hardest and
// communication dominates). Shows the Bit-Tuner in action — per-epoch bit
// widths rise and fall as the selector's predicted-approximation share
// moves — and how traffic scales with degree.
//
//	go run ./examples/socialnet
package main

import (
	"fmt"
	"log"
	"os"

	"ecgraph/internal/core"
	"ecgraph/internal/datasets"
	"ecgraph/internal/metrics"
	"ecgraph/internal/nn"
	"ecgraph/internal/worker"
)

func main() {
	// Dense community graph: 3k users, average degree 80.
	d := datasets.Generate(datasets.Config{
		Name: "socialnet-3k", N: 3000, AvgDegree: 80, NumFeatures: 128,
		NumClasses: 12, Homophily: 0.74, FeatureNoise: 0.85, LabelNoise: 0.08,
		TrainFrac: 0.5, ValFrac: 0.1, Seed: 11,
	})
	fmt.Printf("generated %s: %d vertices, %d edges, avg degree %.1f\n\n",
		d.Name, d.Graph.N, d.Graph.NumEdges(), d.Graph.AvgDegree())

	res, err := core.Train(core.Config{
		Dataset: d,
		Kind:    nn.KindGCN,
		Hidden:  []int{32},
		Workers: 6,
		Servers: 2,
		Epochs:  40,
		LR:      0.01,
		Seed:    1,
		Worker: worker.Options{
			FPScheme: worker.SchemeEC, FPBits: 4,
			BPScheme: worker.SchemeEC, BPBits: 4,
			Ttr: 10, AdaptiveBits: true,
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	table := metrics.NewTable("Bit-Tuner trajectory (per-worker FP bits)",
		"epoch", "bits per worker", "traffic", "val acc")
	for t, e := range res.Epochs {
		if t%5 != 0 && t != len(res.Epochs)-1 {
			continue
		}
		table.AddRowStrings(
			fmt.Sprintf("%d", t),
			fmt.Sprintf("%v", e.FPBits),
			metrics.FormatBytes(float64(e.Bytes)),
			fmt.Sprintf("%.4f", e.ValAcc))
	}
	table.Render(os.Stdout)

	raw, err := core.Train(core.Config{
		Dataset: d, Kind: nn.KindGCN, Hidden: []int{32},
		Workers: 6, Servers: 2, Epochs: 5, LR: 0.01, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("test accuracy %.4f; EC traffic %s/epoch vs raw %s/epoch (%.1fx less)\n",
		res.TestAccuracy,
		metrics.FormatBytes(res.AvgEpochBytes()),
		metrics.FormatBytes(raw.AvgEpochBytes()),
		raw.AvgEpochBytes()/res.AvgEpochBytes())
}
