// Distributed-TCP example: the same training pipeline as quickstart, but
// every message — ghost embeddings, embedding gradients, parameter pulls
// and pushes — crosses real loopback TCP sockets through the binary codec.
// Compares the byte counts against the in-process transport to show the
// simulation counts exactly what the wire carries.
//
//	go run ./examples/distributed_tcp
package main

import (
	"fmt"
	"log"

	"ecgraph/internal/core"
	"ecgraph/internal/datasets"
	"ecgraph/internal/metrics"
	"ecgraph/internal/nn"
	"ecgraph/internal/transport"
	"ecgraph/internal/worker"
)

func main() {
	d := datasets.MustLoad("pubmed")
	const workers, servers, epochs = 3, 1, 10

	opts := worker.Options{
		FPScheme: worker.SchemeEC, FPBits: 2,
		BPScheme: worker.SchemeEC, BPBits: 2,
		Ttr: 5,
	}
	base := core.Config{
		Dataset: d, Kind: nn.KindGCN, Hidden: []int{16},
		Workers: workers, Servers: servers, Epochs: epochs,
		LR: 0.01, Seed: 1, Worker: opts,
	}

	// Run 1: in-process transport (byte-counted simulation).
	inproc, err := core.Train(base)
	if err != nil {
		log.Fatal(err)
	}

	// Run 2: real TCP sockets.
	net, err := transport.NewTCPCluster(workers + servers)
	if err != nil {
		log.Fatal(err)
	}
	defer net.Close()
	fmt.Println("TCP cluster:")
	for i := 0; i < workers+servers; i++ {
		role := "worker"
		if i >= workers {
			role = "server"
		}
		fmt.Printf("  node %d (%s) on %s\n", i, role, net.Addr(i))
	}
	tcpCfg := base
	tcpCfg.Net = net
	tcp, err := core.Train(tcpCfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nin-process: acc %.4f, %s/epoch on the (virtual) wire\n",
		inproc.TestAccuracy, metrics.FormatBytes(inproc.AvgEpochBytes()))
	fmt.Printf("real TCP:   acc %.4f, %s/epoch across sockets\n",
		tcp.TestAccuracy, metrics.FormatBytes(tcp.AvgEpochBytes()))
	fmt.Printf("\nsame codec on both paths — the byte counts differ only by TCP framing (%.1f%%)\n",
		100*(tcp.AvgEpochBytes()-inproc.AvgEpochBytes())/inproc.AvgEpochBytes())
}
