package ecgraph

// One benchmark per table and figure of the paper's evaluation (§V). Each
// wraps the corresponding experiment in quick mode so `go test -bench=.`
// finishes in minutes; cmd/ecgraph-bench -exp <id> runs the full-scale
// version and prints the regenerated table/figure.

import (
	"io"
	"math/rand"
	"testing"

	"ecgraph/internal/compress"
	"ecgraph/internal/core"
	"ecgraph/internal/datasets"
	"ecgraph/internal/experiments"
	"ecgraph/internal/graph"
	"ecgraph/internal/nn"
	"ecgraph/internal/partition"
	"ecgraph/internal/tensor"
	"ecgraph/internal/worker"
)

func benchExperiment(b *testing.B, name string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if err := experiments.Run(name, experiments.Options{Quick: true, Out: io.Discard}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6ForwardCompression regenerates Fig. 6 (FP convergence under
// compression-only vs ReqEC-FP across bit widths).
func BenchmarkFig6ForwardCompression(b *testing.B) { benchExperiment(b, "fig6") }

// BenchmarkFig7BackwardCompression regenerates Fig. 7 (BP convergence under
// compression-only vs ResEC-BP).
func BenchmarkFig7BackwardCompression(b *testing.B) { benchExperiment(b, "fig7") }

// BenchmarkFig8Ablation regenerates Fig. 8 (per-arm convergence speedup and
// accuracy).
func BenchmarkFig8Ablation(b *testing.B) { benchExperiment(b, "fig8") }

// BenchmarkTable2Costs regenerates Table II (ML-centered vs EC-Graph cost
// analysis, analytic and measured).
func BenchmarkTable2Costs(b *testing.B) { benchExperiment(b, "table2") }

// BenchmarkTable4EpochTime regenerates Table IV (per-epoch training time
// across systems, datasets and depths).
func BenchmarkTable4EpochTime(b *testing.B) { benchExperiment(b, "table4") }

// BenchmarkTable5Accuracy regenerates Table V (test accuracy per system).
func BenchmarkTable5Accuracy(b *testing.B) { benchExperiment(b, "table5") }

// BenchmarkFig9EndToEnd regenerates Fig. 9 (preprocessing + convergence
// time and EC-Graph speedups).
func BenchmarkFig9EndToEnd(b *testing.B) { benchExperiment(b, "fig9") }

// BenchmarkFig10LargestGraph regenerates Fig. 10 (EC-Graph vs EC-Graph-S on
// the largest dataset).
func BenchmarkFig10LargestGraph(b *testing.B) { benchExperiment(b, "fig10") }

// BenchmarkFig11Scalability regenerates Fig. 11 (epoch time vs machines
// under Hash and METIS).
func BenchmarkFig11Scalability(b *testing.B) { benchExperiment(b, "fig11") }

// BenchmarkThm1ResidualTrace regenerates the Theorem 1 residual-vs-bound
// trace on real training gradients.
func BenchmarkThm1ResidualTrace(b *testing.B) { benchExperiment(b, "thm1") }

// ---- Design-choice ablations beyond the paper's own (DESIGN.md §5) ----

// BenchmarkAblationMatmulOrder measures the §III-A message-aggregating
// optimisation: computing Â(HW) when the input dimension exceeds the
// output dimension versus always aggregating first.
func BenchmarkAblationMatmulOrder(b *testing.B) {
	d := datasets.MustLoad("cora")
	adj := graph.Normalize(d.Graph)
	w := nn.NewModel(nn.KindGCN, []int{d.NumFeatures(), 16}, 1).Layers[0].W
	b.Run("weight-first", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			adj.SpMM(d.Features.MatMul(w))
		}
	})
	b.Run("aggregate-first", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			adj.SpMM(d.Features).MatMul(w)
		}
	})
}

// BenchmarkAblationBitWidth sweeps the quantiser across the Bit-Tuner's
// menu, reporting the throughput cost of each width.
func BenchmarkAblationBitWidth(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	m := tensor.New(2048, 64)
	for i := range m.Data {
		m.Data[i] = rng.Float32()
	}
	for _, bits := range compress.ValidBits {
		b.Run(map[int]string{1: "1bit", 2: "2bit", 4: "4bit", 8: "8bit", 16: "16bit"}[bits], func(b *testing.B) {
			b.SetBytes(int64(len(m.Data) * 4))
			for i := 0; i < b.N; i++ {
				compress.Compress(m, bits).Decompress()
			}
		})
	}
}

// BenchmarkAblationPartitioner compares one EC-Graph epoch under Hash vs
// METIS partitioning (traffic difference dominates).
func BenchmarkAblationPartitioner(b *testing.B) {
	for _, p := range []partition.Partitioner{partition.Hash{}, partition.Metis{}} {
		b.Run(p.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, err := core.Train(core.Config{
					Dataset: datasets.MustLoad("cora"), Kind: nn.KindGCN, Hidden: []int{16},
					Workers: 3, Servers: 1, Epochs: 2, LR: 0.01, Seed: 1, Partitioner: p,
					Worker: worker.Options{FPScheme: worker.SchemeEC, BPScheme: worker.SchemeEC, FPBits: 2, BPBits: 2, Ttr: 10},
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationSelectorGranularity compares ReqEC-FP's vertex-wise
// selector (the paper's choice, §IV-B) against the matrix-wise variant.
func BenchmarkAblationSelectorGranularity(b *testing.B) {
	for _, matrixWise := range []bool{false, true} {
		name := "vertex-wise"
		if matrixWise {
			name = "matrix-wise"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := core.Train(core.Config{
					Dataset: datasets.MustLoad("cora"), Kind: nn.KindGCN, Hidden: []int{16},
					Workers: 3, Servers: 1, Epochs: 5, LR: 0.01, Seed: 1,
					Worker: worker.Options{
						FPScheme: worker.SchemeEC, FPBits: 2, Ttr: 4,
						MatrixWiseSelector: matrixWise,
					},
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.AvgEpochBytes(), "wire-bytes/epoch")
			}
		})
	}
}

// BenchmarkEpochByScheme times one full training epoch per communication
// scheme on the cora preset — the microbenchmark behind Table IV's EC-Graph
// row.
func BenchmarkEpochByScheme(b *testing.B) {
	schemes := map[string]worker.Options{
		"raw":      {},
		"compress": {FPScheme: worker.SchemeCompress, BPScheme: worker.SchemeCompress, FPBits: 2, BPBits: 2},
		"ec":       {FPScheme: worker.SchemeEC, BPScheme: worker.SchemeEC, FPBits: 2, BPBits: 2, Ttr: 10},
	}
	for _, name := range []string{"raw", "compress", "ec"} {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, err := core.Train(core.Config{
					Dataset: datasets.MustLoad("cora"), Kind: nn.KindGCN, Hidden: []int{16},
					Workers: 3, Servers: 1, Epochs: 3, LR: 0.01, Seed: 1,
					Worker: schemes[name],
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationCompressor compares the three gradient compressors at a
// matched ~2-bit byte budget: the paper's bucket quantiser, the
// zero-centred level grid, and Top-K sparsification (ref [32]). The metric
// reported alongside time is the relative L2 reconstruction error.
func BenchmarkAblationCompressor(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := tensor.New(1024, 64)
	for i := range g.Data {
		if i%13 == 0 { // sparse spikes, like output-layer gradients
			g.Data[i] = float32(rng.NormFloat64())
		}
	}
	norm := g.FrobeniusNorm()
	k := compress.KForBudget(len(g.Data), 2)
	arms := []struct {
		name string
		run  func() float64
	}{
		{"bucket-2bit", func() float64 { return compress.Compress(g, 2).Decompress().Sub(g).FrobeniusNorm() }},
		{"zerocentered-2bit", func() float64 {
			return compress.CompressZeroCentered(g, 2).Decompress().Sub(g).FrobeniusNorm()
		}},
		{"topk-samebudget", func() float64 { return compress.TopK(g, k).Dense().Sub(g).FrobeniusNorm() }},
	}
	for _, arm := range arms {
		b.Run(arm.name, func(b *testing.B) {
			var err float64
			for i := 0; i < b.N; i++ {
				err = arm.run()
			}
			b.ReportMetric(err/norm, "rel-l2-err")
		})
	}
}

// BenchmarkAblationPerRowDomains compares the paper's whole-matrix
// quantisation domain with per-row domains at 4 bits on embeddings with an
// outlier row.
func BenchmarkAblationPerRowDomains(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	h := tensor.New(1024, 64)
	for i := range h.Data {
		h.Data[i] = rng.Float32()
	}
	for c := 0; c < 64; c++ { // one outlier vertex inflates the global domain
		h.Set(0, c, 50)
	}
	norm := h.FrobeniusNorm()
	b.Run("global-domain", func(b *testing.B) {
		var err float64
		for i := 0; i < b.N; i++ {
			err = compress.Compress(h, 4).Decompress().Sub(h).FrobeniusNorm()
		}
		b.ReportMetric(err/norm, "rel-l2-err")
	})
	b.Run("per-row-domain", func(b *testing.B) {
		var err float64
		for i := 0; i < b.N; i++ {
			err = compress.CompressPerRow(h, 4).Decompress().Sub(h).FrobeniusNorm()
		}
		b.ReportMetric(err/norm, "rel-l2-err")
	})
}

// BenchmarkGATDistributed regenerates the distributed-GAT table (the
// §III-B model-generality experiment).
func BenchmarkGATDistributed(b *testing.B) { benchExperiment(b, "gat") }
